//! Experiment 5 (Thm. 4): closeness-centrality fast path.
//!
//! Thm. 4's discussion: the naive double sum costs `O(n_A n_B)` per
//! vertex, but factoring by hop value reduces `r` queries to
//! `O(r(n_A + n_B) + r·h*)`. This experiment times both evaluators over a
//! vertex sample, verifies they agree exactly, and reports the speedup —
//! the crossover the paper's complexity claim predicts.

use std::fmt;

use serde::Serialize;
use std::time::Instant;

use kron_core::closeness::{closeness_fast, closeness_naive};
use kron_core::distance::DistanceOracle;
use kron_core::KroneckerPair;
use kron_datasets::gnutella::{synthetic_gnutella, GnutellaConfig};

use crate::Table;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Exp5Config {
    /// Factor vertex count (gnutella stand-in).
    pub factor_vertices: u64,
    /// Number of sample vertices `r`.
    pub samples: usize,
}

impl Exp5Config {
    /// Default scale.
    pub fn default_scale() -> Self {
        Exp5Config { factor_vertices: 1200, samples: 64 }
    }
}

/// Experiment output.
#[derive(Debug, Serialize)]
pub struct Exp5Report {
    /// `(n_A, n_C)`.
    pub sizes: (u64, u64),
    /// Sampled vertex count.
    pub samples: usize,
    /// Seconds for the naive evaluator over the sample.
    pub naive_secs: f64,
    /// Seconds for the factored evaluator over the sample.
    pub fast_secs: f64,
    /// Max absolute disagreement between the two (expect ~1e-12).
    pub max_abs_diff: f64,
    /// Closeness of the first few sampled vertices (for the record).
    pub sample_values: Vec<(u64, f64)>,
}

/// Runs the experiment.
pub fn run(config: &Exp5Config) -> Exp5Report {
    let mut gcfg = GnutellaConfig::scaled();
    gcfg.vertices = config.factor_vertices;
    let a = synthetic_gnutella(&gcfg);
    let pair = KroneckerPair::with_full_self_loops(a.clone(), a).expect("loop-free factor");
    let oracle = DistanceOracle::new(&pair).expect("full self loops");

    // Deterministic spread of sample vertices across V_C.
    let n_c = pair.n_c();
    let stride = (n_c / config.samples as u64).max(1);
    let sample: Vec<u64> = (0..config.samples as u64).map(|s| (s * stride) % n_c).collect();

    let t0 = Instant::now();
    let naive: Vec<f64> = sample
        .iter()
        .map(|&p| closeness_naive(&oracle, p).expect("in range"))
        .collect();
    let naive_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let fast: Vec<f64> = sample
        .iter()
        .map(|&p| closeness_fast(&oracle, p).expect("in range"))
        .collect();
    let fast_secs = t1.elapsed().as_secs_f64();

    let max_abs_diff = naive
        .iter()
        .zip(&fast)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    let sample_values = sample.iter().copied().zip(fast.iter().copied()).take(5).collect();

    Exp5Report {
        sizes: (pair.a().n(), n_c),
        samples: config.samples,
        naive_secs,
        fast_secs,
        max_abs_diff,
        sample_values,
    }
}

impl Exp5Report {
    /// Speedup of the factored evaluator.
    pub fn speedup(&self) -> f64 {
        if self.fast_secs == 0.0 {
            f64::INFINITY
        } else {
            self.naive_secs / self.fast_secs
        }
    }

    /// Renders the timing table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Experiment 5 (paper Thm. 4): closeness centrality evaluation",
            &["evaluator", "complexity / vertex", "seconds", "speedup"],
        );
        t.row(&[
            "naive double sum".into(),
            "O(n_A · n_B)".into(),
            format!("{:.4}", self.naive_secs),
            "1.0".into(),
        ]);
        t.row(&[
            "hop-histogram factored".into(),
            "O(n_A + n_B + h*)".into(),
            format!("{:.4}", self.fast_secs),
            format!("{:.1}", self.speedup()),
        ]);
        t
    }
}

impl fmt::Display for Exp5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "n_A = {}, n_C = {}, r = {} sampled vertices, max |naive − fast| = {:.2e}",
            self.sizes.0, self.sizes.1, self.samples, self.max_abs_diff
        )?;
        writeln!(f, "{}", self.table())?;
        writeln!(f, "sample closeness values:")?;
        for (p, zeta) in &self.sample_values {
            writeln!(f, "  zeta_C({p}) = {zeta:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluators_agree_and_fast_wins() {
        let report = run(&Exp5Config { factor_vertices: 400, samples: 16 });
        // The two evaluators sum ~n_A·n_B float terms in different orders;
        // agreement is to accumulation error, not bit-exact.
        assert!(report.max_abs_diff < 1e-6, "diff {}", report.max_abs_diff);
        assert_eq!(report.sample_values.len(), 5);
        // The factored path should not be slower at this scale.
        assert!(
            report.speedup() > 1.0,
            "expected speedup > 1, got {:.2}",
            report.speedup()
        );
    }

    #[test]
    fn renders() {
        let report = run(&Exp5Config { factor_vertices: 300, samples: 4 });
        assert!(report.to_string().contains("closeness"));
    }
}
