//! Table 1 (§I): the scaling-law table, verified end-to-end.
//!
//! Evaluates every row of the paper's scaling-law table on materialized
//! validation-scale products: formula value vs direct measurement.

use std::fmt;

use serde::Serialize;

use kron_core::scaling::{scaling_law_report, LawRow};
use kron_graph::generators::{sbm, SbmConfig};

use crate::Table;

/// Experiment configuration: SBM factors with planted partitions.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Factor `A` blocks × block size.
    pub a_blocks: (usize, u64),
    /// Factor `B` blocks × block size.
    pub b_blocks: (usize, u64),
    /// Within/between-block densities.
    pub p_in: f64,
    /// Between-block density.
    pub p_out: f64,
    /// Seed.
    pub seed: u64,
}

impl Table1Config {
    /// Default validation-scale factors.
    pub fn default_scale() -> Self {
        Table1Config {
            a_blocks: (3, 8),
            b_blocks: (2, 9),
            p_in: 0.8,
            p_out: 0.08,
            seed: 42,
        }
    }
}

/// Experiment output.
#[derive(Debug, Serialize)]
pub struct Table1Report {
    /// One row per scaling law.
    pub rows: Vec<LawRow>,
}

/// Runs the experiment.
pub fn run(config: &Table1Config) -> Table1Report {
    let cfg_a = SbmConfig::uniform(
        config.a_blocks.0,
        config.a_blocks.1,
        config.p_in,
        config.p_out,
        config.seed,
    );
    let cfg_b = SbmConfig::uniform(
        config.b_blocks.0,
        config.b_blocks.1,
        config.p_in,
        config.p_out,
        config.seed + 1,
    );
    let a = sbm(&cfg_a);
    let b = sbm(&cfg_b);
    let rows = scaling_law_report(
        &a,
        &b,
        &cfg_a.labels(),
        config.a_blocks.0,
        &cfg_b.labels(),
        config.b_blocks.0,
    )
    .expect("factors satisfy report preconditions");
    Table1Report { rows }
}

impl Table1Report {
    /// True when every law held.
    pub fn all_hold(&self) -> bool {
        self.rows.iter().all(|r| r.holds)
    }

    /// Renders as the paper's table plus verification columns.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 1 (paper §I): scaling laws, formula vs direct",
            &["Quantity", "Formula side", "Direct side", "Holds"],
        );
        for row in &self.rows {
            t.row(&[
                row.quantity.to_string(),
                row.formula.clone(),
                row.direct.clone(),
                if row.holds { "yes".into() } else { "NO".into() },
            ]);
        }
        t
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_laws_hold_at_default_scale() {
        let report = run(&Table1Config::default_scale());
        assert_eq!(report.rows.len(), 12);
        assert!(report.all_hold(), "{}", report);
    }

    #[test]
    fn renders_every_quantity() {
        let report = run(&Table1Config::default_scale());
        let text = report.to_string();
        for q in [
            "Vertices",
            "Edges",
            "Degree",
            "Vertex Triangles",
            "Edge Triangles",
            "Global Triangles",
            "Clustering Coeff.",
            "Vertex Eccentricity",
            "Graph Diameter",
            "# Communities",
            "Internal Density",
            "External Density",
        ] {
            assert!(text.contains(q), "missing row {q}");
        }
    }
}
