//! Experiment 4 (§IV-C, Def. 8): probabilistic edge rejection.
//!
//! Generates the family `G_C, G_{C,.99}, G_{C,.95}, G_{C,.90}` jointly,
//! counts triangles of every member in one enumeration pass over `G_C`,
//! and compares against the expectations `ν·|arcs|`, `ν³·τ_C`, and the
//! per-vertex `ν³ t_p` law.

use std::fmt;

use serde::Serialize;

use kron_core::generate::materialize;
use kron_core::rejection::{joint_global_triangles, joint_vertex_triangles, RejectionFamily};
use kron_core::triangles::TriangleOracle;
use kron_core::KroneckerPair;
use kron_datasets::gnutella::{synthetic_gnutella, GnutellaConfig};

use crate::Table;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Exp4Config {
    /// Factor vertex count (gnutella stand-in, before LCC).
    pub factor_vertices: u64,
    /// Rejection thresholds ν (paper: 1, .99, .95, .90).
    pub thresholds: Vec<f64>,
    /// Hash seed.
    pub seed: u64,
}

impl Exp4Config {
    /// Default: paper's thresholds over a small scale-free factor.
    pub fn default_scale() -> Self {
        Exp4Config {
            factor_vertices: 150,
            thresholds: vec![1.0, 0.99, 0.95, 0.90],
            seed: 2019,
        }
    }
}

/// Per-threshold measurements.
#[derive(Debug, Clone, Serialize)]
pub struct Exp4Row {
    /// Threshold ν.
    pub nu: f64,
    /// Surviving arcs.
    pub arcs: u64,
    /// Expected arcs `ν · nnz_C`.
    pub expected_arcs: f64,
    /// Measured global triangles in `G_{C,ν}`.
    pub triangles: u64,
    /// Expected `ν³ τ_C`.
    pub expected_triangles: f64,
    /// Mean over vertices of measured `t_p` divided by `ν³ t_p`
    /// (restricted to vertices with `t_p > 0`); 1.0 is perfect.
    pub vertex_ratio_mean: f64,
}

/// Experiment output.
#[derive(Debug, Serialize)]
pub struct Exp4Report {
    /// `(n_C, nnz_C, τ_C)` of the full Kronecker graph.
    pub c_summary: (u64, u128, u128),
    /// One row per threshold.
    pub rows: Vec<Exp4Row>,
}

/// Runs the experiment.
pub fn run(config: &Exp4Config) -> Exp4Report {
    let mut gcfg = GnutellaConfig::tiny();
    gcfg.vertices = config.factor_vertices;
    let a = synthetic_gnutella(&gcfg);
    let pair = KroneckerPair::with_full_self_loops(a.clone(), a).expect("loop-free factor");
    let oracle = TriangleOracle::new(&pair).expect("loop-free base");
    let tau_c = oracle.global_triangles();
    let family = RejectionFamily::new(&pair, config.seed);

    // One generation pass counts arcs for every threshold.
    let arc_counts = family.arc_counts(&config.thresholds);
    // One enumeration pass over materialized G_C counts triangles for all.
    let c = materialize(&pair);
    let tri_counts = joint_global_triangles(&c, family.hash(), &config.thresholds);
    let vertex_counts = joint_vertex_triangles(&c, family.hash(), &config.thresholds);
    let t_ground_truth = oracle.vertex_triangle_vector();

    let rows = config
        .thresholds
        .iter()
        .enumerate()
        .map(|(idx, &nu)| {
            let ratios: Vec<f64> = t_ground_truth
                .iter()
                .zip(&vertex_counts[idx])
                .filter(|&(&t, _)| t > 0)
                .map(|(&t, &measured)| measured as f64 / (nu.powi(3) * t as f64))
                .collect();
            let vertex_ratio_mean = if ratios.is_empty() {
                0.0
            } else {
                ratios.iter().sum::<f64>() / ratios.len() as f64
            };
            Exp4Row {
                nu,
                arcs: arc_counts[idx],
                expected_arcs: family.expected_arcs(nu),
                triangles: tri_counts[idx],
                expected_triangles: nu.powi(3) * tau_c as f64,
                vertex_ratio_mean,
            }
        })
        .collect();

    Exp4Report { c_summary: (pair.n_c(), pair.nnz_c(), tau_c), rows }
}

impl Exp4Report {
    /// Renders the per-threshold table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Experiment 4 (paper §IV-C): probabilistic edge rejection",
            &["nu", "arcs", "E[arcs]", "triangles", "E[triangles]", "mean t_p ratio"],
        );
        for row in &self.rows {
            t.row(&[
                format!("{:.2}", row.nu),
                row.arcs.to_string(),
                format!("{:.0}", row.expected_arcs),
                row.triangles.to_string(),
                format!("{:.0}", row.expected_triangles),
                format!("{:.3}", row.vertex_ratio_mean),
            ]);
        }
        t
    }
}

impl fmt::Display for Exp4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "G_C: n = {}, arcs = {}, triangles = {}",
            self.c_summary.0, self.c_summary.1, self.c_summary.2
        )?;
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_report() -> Exp4Report {
        run(&Exp4Config {
            factor_vertices: 60,
            thresholds: vec![1.0, 0.95, 0.9],
            seed: 7,
        })
    }

    #[test]
    fn nu_one_is_exact() {
        let r = small_report();
        let full = &r.rows[0];
        assert_eq!(full.nu, 1.0);
        assert_eq!(full.arcs as u128, r.c_summary.1);
        assert_eq!(full.triangles as u128, r.c_summary.2);
        assert!((full.vertex_ratio_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_near_expectations() {
        let r = small_report();
        for row in &r.rows {
            let arc_err = (row.arcs as f64 - row.expected_arcs).abs() / row.expected_arcs;
            assert!(arc_err < 0.05, "nu={}: arc error {arc_err}", row.nu);
            let tri_err = (row.triangles as f64 - row.expected_triangles).abs()
                / row.expected_triangles;
            assert!(tri_err < 0.15, "nu={}: triangle error {tri_err}", row.nu);
            assert!(
                (row.vertex_ratio_mean - 1.0).abs() < 0.15,
                "nu={}: vertex ratio {}",
                row.nu,
                row.vertex_ratio_mean
            );
        }
    }

    #[test]
    fn family_is_monotone_in_nu() {
        let r = small_report();
        for pair in r.rows.windows(2) {
            assert!(pair[0].nu >= pair[1].nu);
            assert!(pair[0].arcs >= pair[1].arcs);
            assert!(pair[0].triangles >= pair[1].triangles);
        }
    }

    #[test]
    fn renders() {
        assert!(small_report().to_string().contains("edge rejection"));
    }
}
