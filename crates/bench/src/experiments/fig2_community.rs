//! Fig. 2 + §VI-A table: community density scaling experiment.
//!
//! Paper setup: `A` = GraphChallenge `groundtruth_20000` (20,000 vertices,
//! 408,778 edges, 33 communities); `C = (A+I) ⊗ (A+I)` (400M vertices,
//! 83.5B edges, 1089 communities via the Kronecker partition). Fig. 2
//! scatter-plots `ρ_in` vs `ρ_out` per community for `A` and `C`,
//! validating the Cor. 6 / Cor. 7 scaling laws.
//!
//! `C` is never materialized: all 1089 community profiles come from
//! Thm. 6 exact counts on the factor partitions.

use std::fmt;

use serde::Serialize;

use kron_analytics::community::{partition_profiles, CommunityProfile};
use kron_core::community::{cor6_theta, cor7_upper_bound_conservative, CommunityOracle};
use kron_core::KroneckerPair;
use kron_datasets::graphchallenge::{groundtruth_scaled, Groundtruth20000};

use crate::Table;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Factor vertex count (paper: 20,000).
    pub vertices: u64,
    /// Dataset seed.
    pub seed: u64,
}

impl Fig2Config {
    /// Paper-scale configuration.
    pub fn paper_scale() -> Self {
        Fig2Config { vertices: 20_000, seed: 0xC0FFEE }
    }

    /// Reduced scale for tests.
    pub fn small() -> Self {
        Fig2Config { vertices: 2_000, seed: 0xC0FFEE }
    }
}

/// Experiment output.
#[derive(Debug, Serialize)]
pub struct Fig2Report {
    /// `(n, m, #communities)` for `A`.
    pub a_summary: (u64, u64, usize),
    /// `(n, m, #communities)` for `C`.
    pub c_summary: (u64, u128, usize),
    /// Per-community `(ρ_in, ρ_out)` of `A`.
    pub points_a: Vec<(f64, f64)>,
    /// Per-community `(ρ_in, ρ_out)` of `C` (Thm. 6 exact).
    pub points_c: Vec<(f64, f64)>,
    /// Number of `C` communities violating Cor. 6's lower bound (expect 0).
    pub cor6_violations: usize,
    /// Number violating the paper's Cor. 7 `(1+3ω)` bound.
    pub cor7_paper_violations: usize,
    /// Number violating our conservative `(3+4ω)` bound (expect 0 when
    /// the `m_out ≥ |S|` hypothesis holds).
    pub cor7_conservative_violations: usize,
}

fn range(points: &[(f64, f64)], pick: impl Fn(&(f64, f64)) -> f64) -> (f64, f64) {
    let lo = points.iter().map(&pick).fold(f64::MAX, f64::min);
    let hi = points.iter().map(&pick).fold(f64::MIN, f64::max);
    (lo, hi)
}

/// Runs the experiment.
pub fn run(config: &Fig2Config) -> Fig2Report {
    let Groundtruth20000 { graph: a, labels, communities } =
        groundtruth_scaled(config.vertices, config.seed);
    let m_a = a.undirected_edge_count();
    let profiles_a = partition_profiles(&a, &labels, communities);

    let pair = KroneckerPair::with_full_self_loops(a.clone(), a)
        .expect("dataset factor is loop-free");
    let oracle = CommunityOracle::new(&pair).expect("FullBoth pair");
    let profiles_c =
        oracle.kron_partition_profiles(&labels, communities, &labels, communities);

    let points = |profiles: &[CommunityProfile]| -> Vec<(f64, f64)> {
        profiles.iter().map(|p| (p.rho_in, p.rho_out)).collect()
    };

    // Bound checks over all (a, b) community pairs.
    let (n_a, n_b) = (pair.a().n(), pair.b().n());
    let mut cor6_violations = 0;
    let mut cor7_paper_violations = 0;
    let mut cor7_conservative_violations = 0;
    for (ai, pa) in profiles_a.iter().enumerate() {
        for (bi, pb) in profiles_a.iter().enumerate() {
            let pc = &profiles_c[ai * communities + bi];
            if pa.size > 1 && pb.size > 1 {
                let bound = cor6_theta(pa.size, pb.size) * pa.rho_in * pb.rho_in;
                if pc.rho_in < bound - 1e-12 {
                    cor6_violations += 1;
                }
            }
            if pa.m_out >= pa.size && pb.m_out >= pb.size {
                let paper =
                    kron_core::community::cor7_upper_bound(pa, pb, n_a, n_b);
                if pc.rho_out > paper + 1e-15 {
                    cor7_paper_violations += 1;
                }
                let conservative = cor7_upper_bound_conservative(pa, pb, n_a, n_b);
                if pc.rho_out > conservative + 1e-15 {
                    cor7_conservative_violations += 1;
                }
            }
        }
    }

    Fig2Report {
        a_summary: (a_n(&pair), m_a, communities),
        c_summary: (pair.n_c(), pair.undirected_edge_count_c(), profiles_c.len()),
        points_a: points(&profiles_a),
        points_c: points(&profiles_c),
        cor6_violations,
        cor7_paper_violations,
        cor7_conservative_violations,
    }
}

fn a_n(pair: &KroneckerPair) -> u64 {
    pair.base_a().n()
}

impl Fig2Report {
    /// The §VI-A summary table.
    pub fn summary_table(&self) -> Table {
        let (in_a, in_c) = (range(&self.points_a, |p| p.0), range(&self.points_c, |p| p.0));
        let (out_a, out_c) = (range(&self.points_a, |p| p.1), range(&self.points_c, |p| p.1));
        let mut t = Table::new(
            "Experiment groundtruth_20000 (paper §VI-A)",
            &["", "A", "C = (A+I) ⊗ (A+I)"],
        );
        t.row(&["|V|".into(), self.a_summary.0.to_string(), self.c_summary.0.to_string()]);
        t.row(&["|E|".into(), self.a_summary.1.to_string(), self.c_summary.1.to_string()]);
        t.row(&[
            "# comms".into(),
            self.a_summary.2.to_string(),
            self.c_summary.2.to_string(),
        ]);
        t.row(&[
            "rho_in".into(),
            format!("[{:.1e}, {:.1e}]", in_a.0, in_a.1),
            format!("[{:.1e}, {:.1e}]", in_c.0, in_c.1),
        ]);
        t.row(&[
            "rho_out".into(),
            format!("[{:.1e}, {:.1e}]", out_a.0, out_a.1),
            format!("[{:.1e}, {:.1e}]", out_c.0, out_c.1),
        ]);
        t
    }
}

impl fmt::Display for Fig2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary_table())?;
        writeln!(
            f,
            "Cor. 6 lower-bound violations: {} / {}",
            self.cor6_violations,
            self.points_c.len()
        )?;
        writeln!(
            f,
            "Cor. 7 violations: paper (1+3w) constant {} / {}, conservative (3+4w) {} / {}",
            self.cor7_paper_violations,
            self.points_c.len(),
            self.cor7_conservative_violations,
            self.points_c.len()
        )?;
        writeln!(f, "\nFig. 2 scatter (first 10 communities of C): rho_in  rho_out")?;
        for (rho_in, rho_out) in self.points_c.iter().take(10) {
            writeln!(f, "  {rho_in:.3e}  {rho_out:.3e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_laws_hold() {
        let report = run(&Fig2Config::small());
        assert_eq!(report.a_summary.2, 33);
        assert_eq!(report.c_summary.2, 33 * 33);
        assert_eq!(report.cor6_violations, 0, "Cor. 6 must hold exactly");
        assert_eq!(report.cor7_conservative_violations, 0, "conservative Cor. 7 must hold");
        // n_C = n_A², |Π_C| = |Π_A|².
        assert_eq!(report.c_summary.0, report.a_summary.0 * report.a_summary.0);
    }

    #[test]
    fn product_densities_scale_quadratically() {
        let report = run(&Fig2Config::small());
        let (in_a, _) = (range(&report.points_a, |p| p.0), ());
        let (in_c, _) = (range(&report.points_c, |p| p.0), ());
        // ρ_in(C) ≈ ρ_in(A)² regime: C's max internal density is within
        // an order of magnitude of the squared factor density.
        let predicted = in_a.1 * in_a.1;
        assert!(
            in_c.1 / predicted < 10.0 && in_c.1 / predicted > 0.1,
            "rho_in(C) max {} vs predicted {predicted}",
            in_c.1
        );
    }

    #[test]
    fn report_renders() {
        let report = run(&Fig2Config::small());
        let text = report.to_string();
        assert!(text.contains("groundtruth_20000"));
        assert!(text.contains("rho_out"));
    }
}
