//! Experiment 6 (Cor. 1/2): local triangle ground truth, formula vs
//! direct enumeration.
//!
//! The paper's headline complexity claim: a graph analytic costing
//! `O(|E_C|^p)` directly is available as ground truth from
//! `O(|E_C|^{p/2})` storage — global triangle counts in sublinear time,
//! local counts in linear time. This experiment computes every vertex and
//! edge triangle count of `C = (A+I) ⊗ (B+I)` twice — via the Kronecker
//! formulas (factor-sized state) and via materialize-and-enumerate — and
//! reports agreement, timings, and the memory ratio.

use std::fmt;

use serde::Serialize;
use std::time::Instant;

use kron_analytics::triangles as direct;
use kron_core::generate::materialize;
use kron_core::triangles::TriangleOracle;
use kron_core::KroneckerPair;
use kron_graph::generators::{rmat, RmatConfig};

use crate::Table;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct Exp6Config {
    /// R-MAT scale of each factor.
    pub factor_scale: u32,
}

impl Exp6Config {
    /// Default validation scale.
    pub fn default_scale() -> Self {
        Exp6Config { factor_scale: 5 }
    }
}

/// Experiment output.
#[derive(Debug, Serialize)]
pub struct Exp6Report {
    /// `(nnz_A + nnz_B, nnz_C)` — the storage ratio behind "sublinear".
    pub arcs: (usize, u128),
    /// Global triangle count (both methods agreed).
    pub global: u128,
    /// Seconds for the formula side (factor analytics + all n_C vertices +
    /// all edges of C implicitly).
    pub formula_secs: f64,
    /// Seconds for materialize + enumerate.
    pub direct_secs: f64,
    /// Vertex counts agreed.
    pub vertices_match: bool,
    /// Edge counts agreed.
    pub edges_match: bool,
}

/// Runs the experiment.
pub fn run(config: &Exp6Config) -> Exp6Report {
    let a = rmat(&RmatConfig::graph500(config.factor_scale, 21));
    let b = rmat(&RmatConfig::graph500(config.factor_scale, 22));
    let pair = KroneckerPair::with_full_self_loops(a, b).expect("loop-free R-MAT");
    let arcs = (pair.base_a().nnz() + pair.base_b().nnz(), pair.nnz_c());

    // Direct side: materialize C, count everything.
    let t0 = Instant::now();
    let c = materialize(&pair);
    let direct_vertex = direct::vertex_triangles(&c);
    let direct_edges = direct::edge_triangles(&c);
    let direct_secs = t0.elapsed().as_secs_f64();

    // Formula side: factor preprocessing + per-vertex + per-edge queries.
    let t1 = Instant::now();
    let oracle = TriangleOracle::new(&pair).expect("loop-free base");
    let formula_vertex = oracle.vertex_triangle_vector();
    let global = oracle.global_triangles();
    let mut edges_match = true;
    for ((p, q), want) in direct_edges.iter() {
        if oracle.edge_triangles_of(p, q) != Ok(want) {
            edges_match = false;
        }
    }
    let formula_secs = t1.elapsed().as_secs_f64();

    Exp6Report {
        arcs,
        global,
        formula_secs,
        direct_secs,
        vertices_match: formula_vertex == direct_vertex.per_vertex
            && global == direct_vertex.global as u128,
        edges_match,
    }
}

impl Exp6Report {
    /// Factor-state-to-product ratio: the "sublinear memory" factor.
    pub fn storage_ratio(&self) -> f64 {
        self.arcs.1 as f64 / self.arcs.0 as f64
    }

    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Experiment 6 (paper Cor. 1/2): triangle ground truth",
            &["method", "state (arcs)", "seconds", "result"],
        );
        t.row(&[
            "Kronecker formulas".into(),
            self.arcs.0.to_string(),
            format!("{:.4}", self.formula_secs),
            format!("tau_C = {}", self.global),
        ]);
        t.row(&[
            "materialize + enumerate".into(),
            self.arcs.1.to_string(),
            format!("{:.4}", self.direct_secs),
            if self.vertices_match && self.edges_match {
                "identical".into()
            } else {
                "MISMATCH".into()
            },
        ]);
        t
    }
}

impl fmt::Display for Exp6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "storage ratio |E_C| / (|E_A|+|E_B|) = {:.1}x",
            self.storage_ratio()
        )?;
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_direct() {
        let report = run(&Exp6Config { factor_scale: 4 });
        assert!(report.vertices_match, "vertex triangle mismatch");
        assert!(report.edges_match, "edge triangle mismatch");
        assert!(report.storage_ratio() > 10.0);
    }

    #[test]
    fn renders() {
        let report = run(&Exp6Config { factor_scale: 4 });
        assert!(report.to_string().contains("triangle ground truth"));
    }
}
