//! Minimal self-contained SVG rendering for the figure regenerators.
//!
//! Fig. 1 is a pair of histograms and Fig. 2 a log–log scatter; this
//! module renders both shapes with no external dependencies so
//! `fig1_eccentricity --svg` / `fig2_community --svg` can emit actual
//! figure files next to their text tables.

use std::fmt::Write as _;

/// Canvas size used by both plots.
const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 440.0;
const MARGIN: f64 = 60.0;

/// A histogram series: `(label, color, (value, count) pairs)`.
pub type HistogramSeries = (String, String, Vec<(u64, u64)>);

/// A named series of scatter points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Fill color (any SVG color string).
    pub color: String,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
}

fn svg_header(title: &str) -> String {
    format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">
<rect width="100%" height="100%" fill="white"/>
<text x="{x}" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">{title}</text>
"#,
        x = WIDTH / 2.0,
    )
}

fn axis_lines() -> String {
    format!(
        r#"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/>
<line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="black"/>
"#,
        m = MARGIN,
        b = HEIGHT - MARGIN,
        r = WIDTH - MARGIN / 2.0,
        t = MARGIN / 2.0,
    )
}

/// Renders a grouped bar chart (one group per integer x value, one bar
/// per series) — the Fig. 1 histogram layout. Y is linear.
pub fn render_histogram(
    title: &str,
    x_label: &str,
    series: &[HistogramSeries],
) -> String {
    let mut svg = svg_header(title);
    svg.push_str(&axis_lines());
    let min_x = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().map(|&(x, _)| x))
        .min()
        .unwrap_or(0);
    let max_x = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().map(|&(x, _)| x))
        .max()
        .unwrap_or(1);
    let max_y = series
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().map(|&(_, y)| y))
        .max()
        .unwrap_or(1)
        .max(1);
    let groups = (max_x - min_x + 1) as f64;
    let group_width = (WIDTH - 1.5 * MARGIN) / groups;
    let bar_width = group_width / (series.len() as f64 + 0.5);
    let plot_height = HEIGHT - 1.5 * MARGIN;

    for (series_idx, (label, color, points)) in series.iter().enumerate() {
        for &(x, y) in points {
            if y == 0 {
                continue;
            }
            let height = y as f64 / max_y as f64 * plot_height;
            let gx = MARGIN + (x - min_x) as f64 * group_width;
            let bx = gx + series_idx as f64 * bar_width;
            let by = HEIGHT - MARGIN - height;
            let _ = writeln!(
                svg,
                r#"<rect x="{bx:.1}" y="{by:.1}" width="{w:.1}" height="{height:.1}" fill="{color}" opacity="0.85"><title>{label}: ecc {x} → {y}</title></rect>"#,
                w = bar_width * 0.9,
            );
        }
        // Legend.
        let ly = MARGIN / 2.0 + 16.0 * series_idx as f64;
        let _ = writeln!(
            svg,
            r#"<rect x="{x}" y="{y}" width="12" height="12" fill="{color}"/><text x="{tx}" y="{ty}" font-family="sans-serif" font-size="12">{label}</text>"#,
            x = WIDTH - 200.0,
            y = ly,
            tx = WIDTH - 182.0,
            ty = ly + 10.0,
        );
    }
    // X tick labels.
    for x in min_x..=max_x {
        let gx = MARGIN + (x - min_x) as f64 * group_width + group_width / 2.0;
        let _ = writeln!(
            svg,
            r#"<text x="{gx:.1}" y="{y}" font-family="sans-serif" font-size="11" text-anchor="middle">{x}</text>"#,
            y = HEIGHT - MARGIN + 16.0,
        );
    }
    let _ = writeln!(
        svg,
        r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle">{x_label}</text>"#,
        x = WIDTH / 2.0,
        y = HEIGHT - 14.0,
    );
    svg.push_str("</svg>\n");
    svg
}

/// Renders a log–log scatter plot — the Fig. 2 layout. Points with
/// nonpositive coordinates are skipped (log scale).
pub fn render_loglog_scatter(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
) -> String {
    let finite: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0)
        .collect();
    let (mut min_x, mut max_x) = (f64::MAX, f64::MIN);
    let (mut min_y, mut max_y) = (f64::MAX, f64::MIN);
    for &(x, y) in &finite {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    if finite.is_empty() {
        min_x = 1e-6;
        max_x = 1.0;
        min_y = 1e-6;
        max_y = 1.0;
    }
    let (lx0, lx1) = (min_x.log10().floor(), max_x.log10().ceil());
    let (ly0, ly1) = (min_y.log10().floor(), max_y.log10().ceil());
    let sx = |x: f64| {
        MARGIN + (x.log10() - lx0) / (lx1 - lx0).max(1e-9) * (WIDTH - 1.5 * MARGIN)
    };
    let sy = |y: f64| {
        HEIGHT - MARGIN - (y.log10() - ly0) / (ly1 - ly0).max(1e-9) * (HEIGHT - 1.5 * MARGIN)
    };

    let mut svg = svg_header(title);
    svg.push_str(&axis_lines());
    // Decade ticks.
    let mut decade = lx0 as i64;
    while decade <= lx1 as i64 {
        let px = sx(10f64.powi(decade as i32));
        let _ = writeln!(
            svg,
            r#"<text x="{px:.1}" y="{y}" font-family="sans-serif" font-size="11" text-anchor="middle">1e{decade}</text>"#,
            y = HEIGHT - MARGIN + 16.0,
        );
        decade += 1;
    }
    decade = ly0 as i64;
    while decade <= ly1 as i64 {
        let py = sy(10f64.powi(decade as i32));
        let _ = writeln!(
            svg,
            r#"<text x="{x}" y="{py:.1}" font-family="sans-serif" font-size="11" text-anchor="end">1e{decade}</text>"#,
            x = MARGIN - 6.0,
        );
        decade += 1;
    }
    for (idx, s) in series.iter().enumerate() {
        for &(x, y) in &s.points {
            if x <= 0.0 || y <= 0.0 {
                continue;
            }
            let _ = writeln!(
                svg,
                r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="3" fill="{color}" opacity="0.7"/>"#,
                cx = sx(x),
                cy = sy(y),
                color = s.color,
            );
        }
        let ly = MARGIN / 2.0 + 16.0 * idx as f64;
        let _ = writeln!(
            svg,
            r#"<circle cx="{x}" cy="{y}" r="5" fill="{color}"/><text x="{tx}" y="{ty}" font-family="sans-serif" font-size="12">{label}</text>"#,
            x = WIDTH - 200.0,
            y = ly + 6.0,
            color = s.color,
            tx = WIDTH - 188.0,
            ty = ly + 10.0,
            label = s.label,
        );
    }
    let _ = writeln!(
        svg,
        r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="12" text-anchor="middle">{x_label}</text>
<text x="16" y="{my}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 {my})">{y_label}</text>"#,
        x = WIDTH / 2.0,
        y = HEIGHT - 14.0,
        my = HEIGHT / 2.0,
    );
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_renders_bars_and_legend() {
        let svg = render_histogram(
            "demo",
            "eccentricity",
            &[
                ("A".into(), "steelblue".into(), vec![(3, 10), (4, 50)]),
                ("C".into(), "darkorange".into(), vec![(3, 5), (4, 80), (5, 1)]),
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.matches("<rect").count() >= 5); // bars + legend + bg
        assert!(svg.contains("steelblue"));
        assert!(svg.contains(">A</text>"));
    }

    #[test]
    fn histogram_handles_empty() {
        let svg = render_histogram("empty", "x", &[]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn scatter_renders_points_and_skips_nonpositive() {
        let svg = render_loglog_scatter(
            "demo",
            "rho_in",
            "rho_out",
            &[Series {
                label: "A".into(),
                color: "crimson".into(),
                points: vec![(1e-2, 1e-4), (5e-2, 3e-4), (0.0, 1.0), (-1.0, 1.0)],
            }],
        );
        // 2 data points + 1 legend dot.
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains("1e-2"));
    }

    #[test]
    fn scatter_handles_empty() {
        let svg = render_loglog_scatter("empty", "x", "y", &[]);
        assert!(svg.contains("</svg>"));
    }
}
