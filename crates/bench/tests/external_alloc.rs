//! Proves the out-of-core claim with the counting allocator: spilling a
//! product to sorted shard runs and building its CSR *externally* keeps
//! peak live heap under a budget of O(merge buffers + degree table) —
//! while the in-memory pipeline over the same product measurably needs
//! more than 10× that, because it must hold every arc at once.
//!
//! Runs only with `--features measure-alloc` (a kron-bench default
//! feature). This file is its own test binary with a single `#[test]`, so
//! no sibling test can allocate inside the measured window.
#![cfg(feature = "measure-alloc")]

use kron_core::generate::materialize;
use kron_core::KroneckerPair;
use kron_dist::{spill_shards_direct, SpillConfig};
use kron_graph::generators::erdos_renyi;
use kron_graph::shard::{build_external_csr, ExternalCsr};

#[test]
fn external_build_peak_memory_stays_under_budget() {
    // Two ER(40) factors: ~780 arcs each, so C carries ~600k arcs — at 8
    // bytes per CSR target the in-memory build must hold several MB live.
    let pair = KroneckerPair::as_is(erdos_renyi(40, 0.5, 71), erdos_renyi(40, 0.5, 72)).unwrap();
    let nnz_c = pair.nnz_c() as u64;
    assert!(nnz_c > 400_000, "product too small to make the comparison meaningful: {nnz_c}");

    let dir = std::env::temp_dir().join(format!("kron_external_alloc_{}", std::process::id()));
    let buf_bytes = 4 * 1024;
    let run_arcs = 16 * 1024;
    let ranks = 4usize;
    let mut spill = SpillConfig::new(dir.clone());
    spill.run_arcs = run_arcs;
    spill.io_buf_bytes = buf_bytes;

    // The whole out-of-core pipeline — synthesize + spill, two-pass
    // external merge, then a streaming degree scan of the result — inside
    // one measured window.
    let out = dir.join("product.krsc");
    let ((runs_total, stats, degree_sum), external) = kron_obs::alloc::measure(|| {
        let runs = spill_shards_direct(&pair, ranks, &spill).expect("spill").runs;
        let paths: Vec<_> = runs.iter().flatten().collect();
        let stats = build_external_csr(&paths, &out, buf_bytes).expect("external build");
        let mut ext = ExternalCsr::open(&out).expect("open external CSR");
        let mut degree_sum = 0u64;
        ext.for_each_degree(|_, d| degree_sum += d).expect("degree stream");
        (paths.len(), stats, degree_sum)
    });
    assert!(external.measured, "measure-alloc allocator must be active");
    assert_eq!(stats.arcs, nnz_c, "external build lost arcs");
    assert_eq!(degree_sum, nnz_c, "degree stream disagrees with arc count");

    // Budget: every run's merge read buffer (all runs are open at once
    // during a merge pass), the O(n) degree table of the external build,
    // the spill row/IO buffers, and fixed slack for paths and the heap.
    // Deliberately *not* a function of the arc count.
    let degree_table = (pair.n_c() + 1) * 8;
    let budget = (runs_total as u64) * (buf_bytes as u64)
        + degree_table
        + 4 * buf_bytes as u64   // spill-side writer buffer + row buffer
        + 64 * 1024;             // paths, heap, BufWriter of the KRSC file
    assert!(
        external.peak_bytes <= budget,
        "external build peak {} bytes exceeds its {}-byte budget ({} runs)",
        external.peak_bytes,
        budget,
        runs_total
    );

    // The in-memory pipeline over the same pair: materialize holds the
    // full product at once, so its peak is Ω(16 bytes per arc).
    let (in_memory_nnz, in_memory) = kron_obs::alloc::measure(|| materialize(&pair).nnz());
    assert_eq!(in_memory_nnz as u64, nnz_c);
    assert!(
        in_memory.peak_bytes > 10 * budget,
        "scale too small: in-memory peak {} bytes is not >10× the {}-byte external budget",
        in_memory.peak_bytes,
        budget
    );

    std::fs::remove_dir_all(&dir).ok();
}
