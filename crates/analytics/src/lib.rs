//! # kron-analytics — reference exact graph algorithms
//!
//! Direct (non-Kronecker) implementations of every analytic the paper
//! derives ground-truth formulas for: BFS hop counts, eccentricity,
//! diameter, closeness centrality (§V), triangle participation at vertices
//! and edges with full enumeration (§IV), clustering coefficients (Def. 7),
//! and community edge counts/densities (§VI, Def. 13).
//!
//! These are the algorithms a downstream HPC developer would be validating;
//! in this repository they double as the independent check that the
//! `kron-core` formulas are correct on materialized product graphs.

pub mod artifacts;
pub mod betweenness;
pub mod clustering;
pub mod community;
pub mod directed_triangles;
pub mod distance;
pub mod histogram;
pub mod labeled;
pub mod triangles;

pub use clustering::{edge_clustering, vertex_clustering};
pub use community::{community_profile, CommunityProfile};
pub use distance::{
    all_eccentricities, bfs_hops, closeness, diameter, eccentricity, DistanceSummary,
};
pub use histogram::Histogram;
pub use triangles::{edge_triangles, global_triangles, vertex_triangles, TriangleCounts};
