//! Distribution-artifact metrics (§IV-C motivation).
//!
//! The paper lists the tells of a nonstochastic Kronecker graph's degree
//! and triangle distributions: *"no large primes are possible; large
//! holes in the distributions; excessive ties for large values"*. These
//! metrics quantify each tell so the edge-rejection experiment can show
//! rejection mitigating them relative to an R-MAT baseline.

use serde::{Deserialize, Serialize};

use crate::Histogram;

/// Summary of one integer-valued distribution's artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactReport {
    /// Number of distinct values in the support.
    pub distinct_values: usize,
    /// Largest prime value present (Kronecker products of composite
    /// factor degrees cannot produce large primes).
    pub largest_prime: Option<u64>,
    /// Largest multiplicative gap between consecutive support values in
    /// the upper half of the support ("large holes").
    pub max_upper_gap_ratio: f64,
    /// Largest multiplicity among the top-10 support values
    /// ("excessive ties for large values").
    pub max_top_tie: u64,
}

/// Deterministic Miller–Rabin primality for `u64` (exact: the standard
/// 7-witness set covers all 64-bit integers).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 325, 9375, 28178, 450775, 9780504, 1795265022] {
        let a = a % n;
        if a == 0 {
            continue;
        }
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Analyzes a histogram's artifacts.
pub fn analyze(hist: &Histogram) -> ArtifactReport {
    let support: Vec<(u64, u64)> = hist.iter().collect();
    let distinct_values = support.len();
    let largest_prime = support
        .iter()
        .rev()
        .map(|&(v, _)| v)
        .find(|&v| is_prime(v));

    // Holes: max ratio between consecutive support values in the upper
    // half of the support (ratios are scale-free, unlike differences).
    let mut max_upper_gap_ratio: f64 = 1.0;
    let start = distinct_values / 2;
    for window in support[start.saturating_sub(1)..].windows(2) {
        let (lo, hi) = (window[0].0, window[1].0);
        if lo > 0 {
            max_upper_gap_ratio = max_upper_gap_ratio.max(hi as f64 / lo as f64);
        }
    }

    // Ties among the largest values.
    let max_top_tie = support
        .iter()
        .rev()
        .take(10)
        .map(|&(_, c)| c)
        .max()
        .unwrap_or(0);

    ArtifactReport { distinct_values, largest_prime, max_upper_gap_ratio, max_top_tie }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_known_values() {
        let primes = [2u64, 3, 5, 7, 31, 97, 7919, 2_147_483_647];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        let composites = [0u64, 1, 4, 9, 91, 7917, 2_147_483_649];
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn primality_large_carmichael_like() {
        // 3215031751 is the smallest strong pseudoprime to bases 2,3,5,7.
        assert!(!is_prime(3_215_031_751));
        assert!(is_prime(18_446_744_073_709_551_557)); // largest u64 prime
    }

    #[test]
    fn analyze_simple_histogram() {
        let h = Histogram::from_values([2, 2, 4, 4, 4, 16, 16]);
        let r = analyze(&h);
        assert_eq!(r.distinct_values, 3);
        assert_eq!(r.largest_prime, Some(2));
        assert!((r.max_upper_gap_ratio - 4.0).abs() < 1e-12); // 4 → 16
        assert_eq!(r.max_top_tie, 3);
    }

    #[test]
    fn analyze_prime_rich_histogram() {
        let h = Histogram::from_values([3, 5, 7, 11, 13]);
        let r = analyze(&h);
        assert_eq!(r.largest_prime, Some(13));
        assert_eq!(r.distinct_values, 5);
    }

    #[test]
    fn analyze_empty() {
        let r = analyze(&Histogram::new());
        assert_eq!(r.distinct_values, 0);
        assert_eq!(r.largest_prime, None);
        assert_eq!(r.max_top_tie, 0);
        assert_eq!(r.max_upper_gap_ratio, 1.0);
    }

    #[test]
    fn kronecker_degrees_lack_primes_above_factor_degrees() {
        // Products of composite values > p have no primes at all.
        let factor_degrees = [4u64, 6, 8, 9];
        let mut h = Histogram::new();
        for &a in &factor_degrees {
            for &b in &factor_degrees {
                h.add(a * b);
            }
        }
        let r = analyze(&h);
        assert_eq!(r.largest_prime, None);
    }
}
