//! Triangle participation at vertices and edges (§IV, Def. 5 / Def. 6).
//!
//! Both definitions strip the diagonal first (`A − A ∘ I_A`), so all
//! routines here operate on the loop-free core of the input graph: a self
//! loop never participates in a triangle.
//!
//! Two kernels live here. [`enumerate_triangles`] visits each triangle
//! `{u, v, w}` with `u < v < w` exactly once in identity order — the
//! contract the probabilistic-rejection experiment (§IV-C) depends on —
//! using per-row forward lists instead of per-edge binary searches. The
//! *counting* entry points ([`vertex_triangles`], [`global_triangles`]
//! and their `_threads` variants) use the degree-ordered vertex-marking
//! kernel of Chiba–Nishizeki (the paper's reference [22]): vertices are
//! ranked ascending by degree, edges oriented low → high rank, the
//! anchor's forward adjacency (`O(√m)` entries) is marked in a bitmap,
//! and each oriented edge is closed by a branch-free probe scan of its
//! head's forward list. Counts are exact, so both kernels and all thread
//! counts agree bit-for-bit.

use kron_graph::{parallel, CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Vertex triangle counts plus the global total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangleCounts {
    /// `per_vertex[v]` = number of triangles containing `v`
    /// (`t_A` of Def. 5).
    pub per_vertex: Vec<u64>,
    /// Total distinct triangles (`τ_A = (1/3) Σ t_v`).
    pub global: u64,
}

/// Edge triangle counts (`Δ_A` of Def. 6), stored per canonical edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTriangles {
    edges: Vec<(VertexId, VertexId)>,
    counts: Vec<u64>,
}

impl EdgeTriangles {
    /// The triangle count at edge `{u, v}`; `None` when the edge is absent
    /// (or is a self loop, which by Def. 6 has no triangle count).
    pub fn get(&self, u: VertexId, v: VertexId) -> Option<u64> {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).ok().map(|idx| self.counts[idx])
    }

    /// Iterates `((u, v), Δ_uv)` over canonical edges (`u < v`).
    pub fn iter(&self) -> impl Iterator<Item = ((VertexId, VertexId), u64)> + '_ {
        self.edges.iter().copied().zip(self.counts.iter().copied())
    }

    /// Number of stored (canonical, loop-free) edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph had no loop-free edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Counts common neighbors of two sorted neighbor slices, skipping entries
/// equal to `a` or `b` (self-loop arcs in either list).
fn intersect_count(left: &[VertexId], right: &[VertexId], a: VertexId, b: VertexId) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = left[i];
                if w != a && w != b {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Degree-ordered forward adjacency — the compact structure of
/// Chiba–Nishizeki. Vertices are ranked ascending by `(degree, id)`;
/// every undirected non-loop edge is oriented from its lower-ranked to
/// its higher-ranked endpoint; forward lists live in rank space. Ranks
/// are stored as `u32` (a materialized graph beyond `u32::MAX` vertices
/// cannot exist in memory), halving the kernel's streamed bytes.
///
/// The payoff is the classic `O(m^{3/2})` bound: each forward list has at
/// most `O(√m)` entries, so closing an oriented edge is cheap even at hub
/// vertices — unlike the identity-order enumeration, where a hub's full
/// neighbor list is walked once per incident edge.
struct Forward {
    /// `order[r]` = vertex holding rank `r` (ascending `(degree, id)`).
    order: Vec<VertexId>,
    /// Rank-space CSR offsets of the forward lists.
    offsets: Vec<usize>,
    /// Forward neighbors as ranks.
    targets: Vec<u32>,
}

impl Forward {
    fn build(g: &CsrGraph) -> Self {
        let n = g.n() as usize;
        assert!(
            g.n() <= u32::MAX as u64,
            "triangle kernel rank space exceeds u32 ({} vertices)",
            g.n()
        );
        let mut order: Vec<VertexId> = (0..g.n()).collect();
        order.sort_unstable_by_key(|&v| (g.degree(v), v));
        let mut rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::with_capacity(g.nnz() / 2);
        for (r, &v) in order.iter().enumerate() {
            targets.extend(
                g.neighbors(v)
                    .iter()
                    .map(|&w| rank[w as usize])
                    .filter(|&rw| rw > r as u32),
            );
            offsets[r + 1] = targets.len();
        }
        Forward { order, offsets, targets }
    }

    /// Forward list of rank `r`.
    #[inline]
    fn forward(&self, r: usize) -> &[u32] {
        &self.targets[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Counts every triangle whose lowest-ranked corner lies in `anchors`
    /// into rank-space participation counts. Per anchor `ra`, `F(ra)` is
    /// marked in the rank-indexed `bitmap` (one bit per vertex, caller-
    /// provided and zeroed); then for each oriented edge `ra → rb`, every
    /// `w ∈ F(rb)` with its bit set closes the triangle `ra < rb < rw`
    /// (`rw > rb` holds by orientation, membership in `F(ra)` by the
    /// bitmap). The inner scan is branch-free — each probe adds the 0/1
    /// bit to the third corner's count and to the edge's match total —
    /// which is what makes the kernel fast at the high match densities
    /// Kronecker products produce. The bitmap is cleared word-wise before
    /// returning, so it can be reused across calls. Returns the number of
    /// triangles anchored in the range.
    fn count_in(
        &self,
        anchors: std::ops::Range<usize>,
        per_rank: &mut [u64],
        bitmap: &mut [u64],
    ) -> u64 {
        debug_assert!(bitmap.len() >= self.order.len().div_ceil(64));
        debug_assert!(bitmap.iter().all(|&w| w == 0));
        let mut global = 0u64;
        for ra in anchors {
            let fa = self.forward(ra);
            for &w in fa {
                bitmap[(w >> 6) as usize] |= 1u64 << (w & 63);
            }
            for &rb in fa {
                let fb = self.forward(rb as usize);
                let mut matches = 0u64;
                for &w in fb {
                    let bit = (bitmap[(w >> 6) as usize] >> (w & 63)) & 1;
                    per_rank[w as usize] += bit;
                    matches += bit;
                }
                per_rank[ra] += matches;
                per_rank[rb as usize] += matches;
                global += matches;
            }
            for &w in fa {
                bitmap[(w >> 6) as usize] = 0;
            }
        }
        global
    }

    /// Permutes rank-space counts back to vertex space.
    fn to_vertex_space(&self, per_rank: &[u64]) -> Vec<u64> {
        let mut per_vertex = vec![0u64; per_rank.len()];
        for (r, &v) in self.order.iter().enumerate() {
            per_vertex[v as usize] = per_rank[r];
        }
        per_vertex
    }

    /// Splits the rank-space anchor range into `chunks` ranges weighted by
    /// actual kernel work — `Σ_{rb ∈ F(ra)} |F(rb)|` probes plus the
    /// bitmap set/clear cost per anchor — so the dense tail of the rank
    /// order does not serialize one worker.
    fn anchor_ranges(&self, chunks: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.order.len();
        let mut prefix = vec![0usize; n + 1];
        for ra in 0..n {
            let fa = self.forward(ra);
            let mut work = 2 * fa.len();
            for &rb in fa {
                work += self.offsets[rb as usize + 1] - self.offsets[rb as usize];
            }
            prefix[ra + 1] = prefix[ra] + work;
        }
        parallel::split_by_weight(&prefix, chunks)
    }
}

/// Triangle participation at every vertex (Def. 5) and the global count.
///
/// Expects an undirected graph; self loops are ignored per the definition.
/// Counts with the degree-ordered compact-forward kernel ([`Forward`]);
/// each triangle is found exactly once, so the counts equal the
/// enumeration-based ones.
///
/// ```
/// use kron_analytics::triangles::vertex_triangles;
/// use kron_graph::generators::clique;
///
/// let t = vertex_triangles(&clique(4));
/// assert_eq!(t.per_vertex, vec![3, 3, 3, 3]);
/// assert_eq!(t.global, 4);
/// ```
pub fn vertex_triangles(g: &CsrGraph) -> TriangleCounts {
    let _span = kron_obs::span::enter("analytics/vertex_triangles");
    let n = g.n() as usize;
    let f = Forward::build(g);
    let mut per_rank = vec![0u64; n];
    let mut bitmap = vec![0u64; n.div_ceil(64)];
    let global = f.count_in(0..n, &mut per_rank, &mut bitmap);
    TriangleCounts { per_vertex: f.to_vertex_space(&per_rank), global }
}

/// Global triangle count `τ_A`.
pub fn global_triangles(g: &CsrGraph) -> u64 {
    let _span = kron_obs::span::enter("analytics/global_triangles");
    let n = g.n() as usize;
    let f = Forward::build(g);
    let mut per_rank = vec![0u64; n];
    let mut bitmap = vec![0u64; n.div_ceil(64)];
    f.count_in(0..n, &mut per_rank, &mut bitmap)
}

/// Parallel [`vertex_triangles`] (`None` = machine parallelism).
///
/// The compact-forward anchor (rank) space is split across workers by
/// forward-arc weight; each worker counts into a private per-vertex
/// vector and the vectors are summed in worker order. Counts are exact
/// integers, so the result is identical to the sequential one.
pub fn vertex_triangles_threads(g: &CsrGraph, threads: Option<usize>) -> TriangleCounts {
    let t = parallel::num_threads(threads);
    if t <= 1 {
        return vertex_triangles(g);
    }
    let _span = kron_obs::span::enter("analytics/vertex_triangles_threads");
    let n = g.n() as usize;
    let f = Forward::build(g);
    let parts = parallel::map_ranges(f.anchor_ranges(t), |_, anchors| {
        let mut per_rank = vec![0u64; n];
        let mut bitmap = vec![0u64; n.div_ceil(64)];
        let count = f.count_in(anchors, &mut per_rank, &mut bitmap);
        (per_rank, count)
    });
    let mut per_rank = vec![0u64; n];
    let mut global = 0u64;
    for (part, count) in parts {
        for (acc, x) in per_rank.iter_mut().zip(part) {
            *acc += x;
        }
        global += count;
    }
    TriangleCounts { per_vertex: f.to_vertex_space(&per_rank), global }
}

/// Parallel [`global_triangles`] (`None` = machine parallelism).
pub fn global_triangles_threads(g: &CsrGraph, threads: Option<usize>) -> u64 {
    let t = parallel::num_threads(threads);
    if t <= 1 {
        return global_triangles(g);
    }
    let _span = kron_obs::span::enter("analytics/global_triangles_threads");
    let n = g.n() as usize;
    let f = Forward::build(g);
    parallel::map_ranges(f.anchor_ranges(t), |_, anchors| {
        let mut per_rank = vec![0u64; n];
        let mut bitmap = vec![0u64; n.div_ceil(64)];
        f.count_in(anchors, &mut per_rank, &mut bitmap)
    })
    .into_iter()
    .sum()
}

/// Triangle participation at every edge (Def. 6):
/// `Δ_uv = |N(u) ∩ N(v)|` on the loop-free core.
pub fn edge_triangles(g: &CsrGraph) -> EdgeTriangles {
    let mut edges = Vec::new();
    let mut counts = Vec::new();
    for u in 0..g.n() {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
                counts.push(intersect_count(g.neighbors(u), g.neighbors(v), u, v));
            }
        }
    }
    EdgeTriangles { edges, counts }
}

/// Enumerates each triangle `{u, v, w}` with `u < v < w` exactly once.
///
/// Used directly by the probabilistic-edge-rejection experiment (§IV-C),
/// which filters enumerated triangles of `G_C` by edge-hash thresholds to
/// count triangles of every `G_{C,ν}` in one pass.
pub fn enumerate_triangles<F: FnMut(VertexId, VertexId, VertexId)>(g: &CsrGraph, visit: F) {
    enumerate_triangles_in(g, 0..g.n(), visit)
}

/// Enumerates each triangle `{u, v, w}` with `u < v < w` whose anchor (the
/// smallest vertex `u`) lies in `anchors`. Partitioning the anchor range
/// across workers partitions the triangle set exactly — the basis of the
/// parallel counters below.
pub fn enumerate_triangles_in<F: FnMut(VertexId, VertexId, VertexId)>(
    g: &CsrGraph,
    anchors: std::ops::Range<VertexId>,
    mut visit: F,
) {
    // Forward starts: for every row, the index of its first entry greater
    // than the row's own vertex — one binary search per row instead of
    // two per (u, v) pair. Rows are sorted, so `nu[forward_start[u]..]`
    // is exactly the identity-order forward list F(u) = { w ∈ N(u) :
    // w > u }, and for `v` at position `t` of `nu`, the entries of `nu`
    // above `v` are exactly `nu[t + 1..]`. These are the same slices the
    // per-pair binary searches located, so the visit order is
    // bit-identical to the old enumeration.
    let n = g.n() as usize;
    let forward_start: Vec<usize> =
        (0..n).map(|v| g.neighbors(v as u64).partition_point(|&w| w <= v as u64)).collect();
    for u in anchors {
        let nu = g.neighbors(u);
        for t in forward_start[u as usize]..nu.len() {
            let v = nu[t];
            // Walk the intersection of N(u) and N(v) above v.
            let nv = g.neighbors(v);
            let mut i = t + 1;
            let mut j = forward_start[v as usize];
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        visit(u, v, nu[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, complete_bipartite, cycle, path, star};

    #[test]
    fn clique_counts() {
        // K5: each vertex in C(4,2)=6 triangles, 10 total.
        let g = clique(5);
        let t = vertex_triangles(&g);
        assert_eq!(t.per_vertex, vec![6; 5]);
        assert_eq!(t.global, 10);
        assert_eq!(global_triangles(&g), 10);
        // Every edge of K5 lies in 3 triangles.
        let e = edge_triangles(&g);
        assert_eq!(e.len(), 10);
        assert!(e.iter().all(|(_, c)| c == 3));
        assert_eq!(e.get(0, 4), Some(3));
        assert_eq!(e.get(4, 0), Some(3));
    }

    #[test]
    fn parallel_counts_match_sequential() {
        use kron_graph::generators::erdos_renyi;
        for g in [clique(9), erdos_renyi(40, 0.3, 7), star(12), path(1)] {
            let sequential = vertex_triangles(&g);
            for threads in [1usize, 2, 3, 8] {
                let got = vertex_triangles_threads(&g, Some(threads));
                assert_eq!(got, sequential, "threads={threads}");
                assert_eq!(
                    global_triangles_threads(&g, Some(threads)),
                    sequential.global,
                    "threads={threads}"
                );
            }
            assert_eq!(vertex_triangles_threads(&g, None), sequential);
        }
    }

    #[test]
    fn compact_forward_matches_enumeration() {
        use kron_graph::generators::{barabasi_albert, erdos_renyi};
        // Skewed, random, and loopy graphs: the rank-ordered kernel must
        // agree with the identity-order enumeration everywhere.
        for g in [
            erdos_renyi(60, 0.2, 3),
            barabasi_albert(50, 4, 9),
            clique(7).with_full_self_loops(),
            star(15),
        ] {
            let n = g.n() as usize;
            let mut per_vertex = vec![0u64; n];
            let mut global = 0u64;
            enumerate_triangles(&g, |u, v, w| {
                per_vertex[u as usize] += 1;
                per_vertex[v as usize] += 1;
                per_vertex[w as usize] += 1;
                global += 1;
            });
            let got = vertex_triangles(&g);
            assert_eq!(got.per_vertex, per_vertex);
            assert_eq!(got.global, global);
            assert_eq!(global_triangles(&g), global);
        }
    }

    #[test]
    fn triangle_free_families() {
        for g in [path(6), cycle(6), star(7), complete_bipartite(3, 4)] {
            assert_eq!(global_triangles(&g), 0);
            assert!(vertex_triangles(&g).per_vertex.iter().all(|&t| t == 0));
            assert!(edge_triangles(&g).iter().all(|(_, c)| c == 0));
        }
    }

    #[test]
    fn self_loops_ignored() {
        let plain = clique(4);
        let looped = plain.with_full_self_loops();
        assert_eq!(vertex_triangles(&looped), vertex_triangles(&plain));
        let e = edge_triangles(&looped);
        // Self-loop "edges" are not canonical u<v pairs, so counts match.
        for ((u, v), c) in edge_triangles(&plain).iter() {
            assert_eq!(e.get(u, v), Some(c));
        }
    }

    #[test]
    fn single_triangle_counts() {
        let g = clique(3);
        let t = vertex_triangles(&g);
        assert_eq!(t.per_vertex, vec![1, 1, 1]);
        assert_eq!(t.global, 1);
        let e = edge_triangles(&g);
        assert_eq!(e.get(0, 1), Some(1));
        assert_eq!(e.get(1, 2), Some(1));
        assert_eq!(e.get(0, 2), Some(1));
    }

    #[test]
    fn edge_lookup_missing() {
        let g = path(4);
        let e = edge_triangles(&g);
        assert_eq!(e.get(0, 1), Some(0));
        assert_eq!(e.get(0, 3), None);
        assert!(!e.is_empty());
    }

    #[test]
    fn enumeration_visits_each_once_in_order() {
        let g = clique(4);
        let mut seen = Vec::new();
        enumerate_triangles(&g, |u, v, w| seen.push((u, v, w)));
        assert_eq!(seen.len(), 4);
        for &(u, v, w) in &seen {
            assert!(u < v && v < w);
        }
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn vertex_counts_consistent_with_edge_counts() {
        // t_u = (1/2) Σ_{v ∈ N(u)} Δ_uv on the loop-free core.
        use kron_graph::generators::erdos_renyi;
        let g = erdos_renyi(40, 0.25, 5);
        let tv = vertex_triangles(&g);
        let et = edge_triangles(&g);
        for u in 0..g.n() {
            let sum: u64 = g
                .neighbors(u)
                .iter()
                .filter(|&&v| v != u)
                .map(|&v| et.get(u, v).expect("edge exists"))
                .sum();
            assert_eq!(sum % 2, 0);
            assert_eq!(tv.per_vertex[u as usize], sum / 2, "vertex {u}");
        }
        // Global count = (1/3) Σ_v t_v.
        let total: u64 = tv.per_vertex.iter().sum();
        assert_eq!(total % 3, 0);
        assert_eq!(tv.global, total / 3);
    }

    #[test]
    fn matches_matrix_oracle() {
        // Def. 5/6 verbatim on the dense oracle: t = ½ diag((A−A∘I)³),
        // Δ = (A−A∘I) ∘ (A−A∘I)².
        use kron_graph::generators::erdos_renyi;
        use kron_linalg::DenseMatrix;
        let g = erdos_renyi(25, 0.3, 11).with_full_self_loops();
        let n = g.n() as usize;
        let mut a = DenseMatrix::zeros(n, n);
        for (u, v) in g.arcs() {
            a.set(u as usize, v as usize, 1);
        }
        let core = &a - &a.hadamard(&DenseMatrix::identity(n));
        let cubed = core.pow(3);
        let expected_t: Vec<u64> =
            cubed.diag_vector().iter().map(|&x| (x / 2) as u64).collect();
        assert_eq!(vertex_triangles(&g).per_vertex, expected_t);

        let delta = core.hadamard(&core.pow(2));
        let et = edge_triangles(&g);
        for ((u, v), c) in et.iter() {
            assert_eq!(delta.get(u as usize, v as usize) as u64, c, "edge ({u},{v})");
        }
    }
}
