//! Triangle participation at vertices and edges (§IV, Def. 5 / Def. 6).
//!
//! Both definitions strip the diagonal first (`A − A ∘ I_A`), so all
//! routines here operate on the loop-free core of the input graph: a self
//! loop never participates in a triangle.
//!
//! Two kinds of kernel live here. [`enumerate_triangles`] visits each
//! triangle `{u, v, w}` with `u < v < w` exactly once in identity order —
//! the contract the probabilistic-rejection experiment (§IV-C) depends
//! on — using per-row forward lists instead of per-edge binary searches.
//! The *counting* entry points ([`vertex_triangles`], [`global_triangles`]
//! and their `_threads` variants) run the degree-ordered compact-forward
//! scheme of Chiba–Nishizeki (the paper's reference [22]) in one of two
//! tiers selected by [`TriangleKernel`]: the PR 4 vertex-marking probe
//! scan, or the PR 6 word-parallel tier that packs dense forward lists
//! into rank-space `u64` bitmaps and closes edges with AND +
//! `count_ones()`. Counts are exact integers, so every kernel tier and
//! thread count agrees bit-for-bit; all scratch is recycled through the
//! process [`Arena`].

use kron_graph::{parallel, Arena, CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Vertex triangle counts plus the global total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangleCounts {
    /// `per_vertex[v]` = number of triangles containing `v`
    /// (`t_A` of Def. 5).
    pub per_vertex: Vec<u64>,
    /// Total distinct triangles (`τ_A = (1/3) Σ t_v`).
    pub global: u64,
}

/// Edge triangle counts (`Δ_A` of Def. 6), stored per canonical edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTriangles {
    edges: Vec<(VertexId, VertexId)>,
    counts: Vec<u64>,
}

impl EdgeTriangles {
    /// The triangle count at edge `{u, v}`; `None` when the edge is absent
    /// (or is a self loop, which by Def. 6 has no triangle count).
    pub fn get(&self, u: VertexId, v: VertexId) -> Option<u64> {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).ok().map(|idx| self.counts[idx])
    }

    /// Iterates `((u, v), Δ_uv)` over canonical edges (`u < v`).
    pub fn iter(&self) -> impl Iterator<Item = ((VertexId, VertexId), u64)> + '_ {
        self.edges.iter().copied().zip(self.counts.iter().copied())
    }

    /// Number of stored (canonical, loop-free) edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph had no loop-free edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Counts common neighbors of two sorted neighbor slices, skipping entries
/// equal to `a` or `b` (self-loop arcs in either list).
fn intersect_count(left: &[VertexId], right: &[VertexId], a: VertexId, b: VertexId) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = left[i];
                if w != a && w != b {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Selects the triangle-counting kernel tier.
///
/// All three tiers count the identical triangle set with exact integer
/// arithmetic, so their outputs are bit-for-bit equal; they differ only
/// in how an oriented edge `ra → rb` is *closed*:
///
/// * [`Marking`](TriangleKernel::Marking) — the PR 4 Chiba–Nishizeki
///   kernel: the anchor's forward list is marked in a one-bit-per-vertex
///   bitmap and `F(rb)` is probe-scanned element by element.
/// * [`Bitmap`](TriangleKernel::Bitmap) — the word-parallel tier: every
///   forward list is packed into a windowed `u64` bitmap in rank space
///   and the edge is closed by AND + `count_ones()` over the anchor's
///   touched words. Memory is `O(Σ window)` words; forced packing of
///   every row is meant for validation, not production.
/// * [`Auto`](TriangleKernel::Auto) — the density/degree heuristic:
///   only dense forward lists are packed, and each anchor chooses per
///   edge whichever close is cheaper (`|anchor words|` vs `|F(rb)|`).
///   Kronecker products have wildly skewed degree classes, so neither
///   pure tier wins everywhere — sparse anchors keep the probe scan,
///   dense anchors go word-parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TriangleKernel {
    /// Heuristic per-anchor selection between the two tiers (default).
    #[default]
    Auto,
    /// Force the element-wise marking kernel everywhere.
    Marking,
    /// Force the packed-bitmap popcount kernel everywhere.
    Bitmap,
}

/// Forward lists shorter than this are never packed under
/// [`TriangleKernel::Auto`]: for tiny rows the probe scan touches fewer
/// cachelines than any packed window and the classic kernel wins.
const PACK_MIN_FORWARD: usize = 16;

/// Degree-ordered forward adjacency — the compact structure of
/// Chiba–Nishizeki. Vertices are ranked ascending by `(degree, id)` (the
/// cached [`CsrGraph::degree_rank_order`] permutation); every undirected
/// non-loop edge is oriented from its lower-ranked to its higher-ranked
/// endpoint; forward lists live in rank space. Ranks are stored as `u32`
/// (a materialized graph beyond `u32::MAX` vertices cannot exist in
/// memory), halving the kernel's streamed bytes.
///
/// The payoff is the classic `O(m^{3/2})` bound: each forward list has at
/// most `O(√m)` entries, so closing an oriented edge is cheap even at hub
/// vertices — unlike the identity-order enumeration, where a hub's full
/// neighbor list is walked once per incident edge.
struct Forward<'g> {
    /// `order[r]` = vertex holding rank `r` (ascending `(degree, id)`),
    /// borrowed from the graph's cached degree-rank permutation.
    order: &'g [VertexId],
    /// Rank-space CSR offsets of the forward lists.
    offsets: Vec<usize>,
    /// Forward neighbors as ranks.
    targets: Vec<u32>,
    /// Length of the longest forward list (scratch-buffer sizing).
    max_forward: usize,
}

/// One packed forward row: bits of `F(r)` over the word window
/// `[base, base + len)` of the rank-space bitmap.
#[derive(Clone, Copy)]
struct PackedMeta {
    /// Index of the window's first word in [`PackedRows::words`].
    start: u32,
    /// First rank-space word index covered by the window.
    base: u32,
    /// Window length in words.
    len: u32,
}

/// Windowed rank-space bitmaps of the packed forward lists.
///
/// Only the word span actually touched by each packed row is stored
/// (`[min rank / 64, max rank / 64]`), so skewed Kronecker degree
/// distributions don't pay `n/64` words per row.
struct PackedRows {
    /// `slot[r]` = index into `meta`, or `NO_SLOT` when `r` is unpacked.
    slot: Vec<u32>,
    meta: Vec<PackedMeta>,
    words: Vec<u64>,
}

const NO_SLOT: u32 = u32::MAX;

impl PackedRows {
    /// Packs forward lists for the word-parallel close. Under `dense_only`
    /// (the [`TriangleKernel::Auto`] tier) a row is packed only when the
    /// AND is the proven-cheaper close: the list must be non-trivial
    /// (≥ [`PACK_MIN_FORWARD`] entries) *and* denser than one bit per
    /// window word (`window words < |F(r)|`), so every packed row costs
    /// fewer word-ANDs than probe elements. With `dense_only` off
    /// ([`TriangleKernel::Bitmap`]) every non-empty row is packed.
    fn build(f: &Forward<'_>, dense_only: bool) -> Self {
        let n = f.order.len();
        let mut slot = vec![NO_SLOT; n];
        let mut meta = Vec::new();
        let mut words = Vec::new();
        for r in 0..n {
            let fr = f.forward(r);
            if fr.is_empty() || (dense_only && fr.len() < PACK_MIN_FORWARD) {
                continue;
            }
            let (mut lo, mut hi) = (u32::MAX, 0u32);
            for &w in fr {
                lo = lo.min(w >> 6);
                hi = hi.max(w >> 6);
            }
            if dense_only && (hi - lo + 1) as usize >= fr.len() {
                continue;
            }
            let base = lo;
            let len = hi - lo + 1;
            let start = words.len();
            words.resize(start + len as usize, 0u64);
            for &w in fr {
                words[start + ((w >> 6) - base) as usize] |= 1u64 << (w & 63);
            }
            slot[r] = meta.len() as u32;
            meta.push(PackedMeta { start: start as u32, base, len });
        }
        PackedRows { slot, meta, words }
    }

    fn none(n: usize) -> Self {
        PackedRows { slot: vec![NO_SLOT; n], meta: Vec::new(), words: Vec::new() }
    }

    /// Bytes held by the packed windows (observability).
    fn bytes(&self) -> u64 {
        8 * self.words.len() as u64
    }
}

/// Per-call kernel telemetry, accumulated locally in the hot loop and
/// published to `kron-obs` counters once per invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct KernelStats {
    /// Anchors that closed ≥ 1 edge on the word-parallel path.
    anchors_bitmap: u64,
    /// Anchors that closed every edge on the probe-scan path.
    anchors_marking: u64,
    /// `u64` words ANDed + popcounted on the bitmap path.
    words_probed: u64,
    /// Elements probe-scanned on the marking path.
    elements_probed: u64,
}

impl KernelStats {
    fn merge(&mut self, other: KernelStats) {
        self.anchors_bitmap += other.anchors_bitmap;
        self.anchors_marking += other.anchors_marking;
        self.words_probed += other.words_probed;
        self.elements_probed += other.elements_probed;
    }

    fn publish(&self) {
        kron_obs::counter!("triangles.anchors_bitmap").add(self.anchors_bitmap);
        kron_obs::counter!("triangles.anchors_marking").add(self.anchors_marking);
        kron_obs::counter!("triangles.words_probed").add(self.words_probed);
        kron_obs::counter!("triangles.elements_probed").add(self.elements_probed);
    }
}

/// The assembled two-tier counting kernel: compact forward structure,
/// packed rows for the dense tail, and the per-anchor path choice.
struct Kernel<'g> {
    f: Forward<'g>,
    packed: PackedRows,
}

impl<'g> Forward<'g> {
    fn build(g: &'g CsrGraph) -> Self {
        let n = g.n() as usize;
        assert!(
            g.n() <= u32::MAX as u64,
            "triangle kernel rank space exceeds u32 ({} vertices)",
            g.n()
        );
        let order = g.degree_rank_order();
        let mut rank = vec![0u32; n];
        for (r, &v) in order.iter().enumerate() {
            rank[v as usize] = r as u32;
        }
        let mut offsets = vec![0usize; n + 1];
        let mut targets = Vec::with_capacity(g.nnz() / 2);
        let mut max_forward = 0usize;
        for (r, &v) in order.iter().enumerate() {
            targets.extend(
                g.neighbors(v)
                    .iter()
                    .map(|&w| rank[w as usize])
                    .filter(|&rw| rw > r as u32),
            );
            max_forward = max_forward.max(targets.len() - offsets[r]);
            offsets[r + 1] = targets.len();
        }
        Forward { order, offsets, targets, max_forward }
    }

    /// Forward list of rank `r`.
    #[inline]
    fn forward(&self, r: usize) -> &[u32] {
        &self.targets[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Forward-list length of rank `r`.
    #[inline]
    fn forward_len(&self, r: usize) -> usize {
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Permutes rank-space counts back to vertex space.
    fn to_vertex_space(&self, per_rank: &[u64]) -> Vec<u64> {
        let mut per_vertex = vec![0u64; per_rank.len()];
        for (r, &v) in self.order.iter().enumerate() {
            per_vertex[v as usize] = per_rank[r];
        }
        per_vertex
    }

    /// Splits the rank-space anchor range into `chunks` ranges weighted by
    /// actual kernel work — `Σ_{rb ∈ F(ra)} |F(rb)|` probes plus the
    /// bitmap set/clear cost per anchor — so the dense tail of the rank
    /// order does not serialize one worker.
    fn anchor_ranges(&self, chunks: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.order.len();
        let mut prefix = vec![0usize; n + 1];
        for ra in 0..n {
            let fa = self.forward(ra);
            let mut work = 2 * fa.len();
            for &rb in fa {
                work += self.forward_len(rb as usize);
            }
            prefix[ra + 1] = prefix[ra] + work;
        }
        parallel::split_by_weight(&prefix, chunks)
    }
}

/// Per-worker scratch drawn from the process [`Arena`]: the anchor
/// bitmap, its touched-word list, and the probe-scan match buffer. All
/// zeroed/emptied on take, returned to the pool on drop.
struct Scratch<'a> {
    bitmap: kron_graph::arena::ArenaBuf<'a, u64>,
    touched: kron_graph::arena::ArenaBuf<'a, u32>,
    matches_buf: kron_graph::arena::ArenaBuf<'a, u32>,
}

impl<'a> Scratch<'a> {
    fn take(arena: &'a Arena, n: usize, max_forward: usize) -> Self {
        Scratch {
            bitmap: arena.take_words(n.div_ceil(64)),
            touched: arena.take_ints(max_forward),
            matches_buf: arena.take_ints(max_forward),
        }
    }
}

impl<'g> Kernel<'g> {
    fn build(g: &'g CsrGraph, kernel: TriangleKernel) -> Self {
        let f = Forward::build(g);
        let n = f.order.len();
        let packed = match kernel {
            TriangleKernel::Marking => PackedRows::none(n),
            TriangleKernel::Bitmap => PackedRows::build(&f, false),
            TriangleKernel::Auto => PackedRows::build(&f, true),
        };
        kron_obs::counter!("triangles.packed_rows").add(packed.meta.len() as u64);
        kron_obs::counter!("triangles.packed_bytes").add(packed.bytes());
        Kernel { f, packed }
    }

    /// Counts every triangle whose lowest-ranked corner lies in `anchors`
    /// into rank-space participation counts. Per anchor `ra`, `F(ra)` is
    /// marked in the rank-indexed bitmap (recording which words were
    /// touched); each oriented edge `ra → rb` is then closed on one of
    /// two paths producing the identical match set:
    ///
    /// * **probe scan** — walk `F(rb)`, compacting matched ranks into a
    ///   small buffer branch-free (`buf[matches] = w; matches += bit`),
    ///   then credit the per-rank counts from the buffer. Only matches
    ///   (≈25% of probes on Kronecker products) pay a scattered write.
    /// * **word-parallel** — stream `rb`'s packed window against the same
    ///   span of the anchor bitmap, branch-free: `count_ones()` of each
    ///   AND yields the match total and bit iteration credits the third
    ///   corners.
    ///
    /// The path choice was made at pack time (see [`PackedRows::build`]):
    /// a row is packed exactly when its window holds fewer words than the
    /// list holds elements, so the word-parallel close is never more
    /// expensive than the probe scan it replaces. Counts are exact
    /// integers, so every path mix produces bit-identical results. The bitmap is
    /// cleared word-wise via the touched list before returning, so it can
    /// be reused across anchors and calls. Returns triangles anchored in
    /// the range.
    fn count_in(
        &self,
        anchors: std::ops::Range<usize>,
        per_rank: &mut [u64],
        scratch: &mut Scratch<'_>,
        stats: &mut KernelStats,
    ) -> u64 {
        let bitmap = &mut *scratch.bitmap;
        let touched = scratch.touched.as_vec_mut();
        let buf = &mut *scratch.matches_buf;
        debug_assert!(bitmap.len() >= self.f.order.len().div_ceil(64));
        debug_assert!(bitmap.iter().all(|&w| w == 0));
        let mut global = 0u64;
        for ra in anchors {
            let fa = self.f.forward(ra);
            if fa.is_empty() {
                continue;
            }
            touched.clear();
            for &w in fa {
                let wi = w >> 6;
                if bitmap[wi as usize] == 0 {
                    touched.push(wi);
                }
                bitmap[wi as usize] |= 1u64 << (w & 63);
            }
            let mut bitmap_edges = 0u64;
            for &rb in fa {
                let rb = rb as usize;
                let flen = self.f.forward_len(rb);
                if flen == 0 {
                    continue;
                }
                let slot = self.packed.slot[rb];
                let mut matches = 0u64;
                if slot != NO_SLOT {
                    bitmap_edges += 1;
                    let m = self.packed.meta[slot as usize];
                    let base = m.base as usize;
                    let wlen = m.len as usize;
                    let window =
                        &self.packed.words[m.start as usize..m.start as usize + wlen];
                    let anchor = &bitmap[base..base + wlen];
                    stats.words_probed += wlen as u64;
                    for (off, (&aword, &fword)) in
                        anchor.iter().zip(window).enumerate()
                    {
                        let x = aword & fword;
                        if x != 0 {
                            matches += x.count_ones() as u64;
                            let mut y = x;
                            while y != 0 {
                                let w =
                                    ((base + off) << 6) + y.trailing_zeros() as usize;
                                per_rank[w] += 1;
                                y &= y - 1;
                            }
                        }
                    }
                } else {
                    let fb = self.f.forward(rb);
                    stats.elements_probed += fb.len() as u64;
                    for &w in fb {
                        let bit = (bitmap[(w >> 6) as usize] >> (w & 63)) & 1;
                        buf[matches as usize] = w;
                        matches += bit;
                    }
                    for &w in &buf[..matches as usize] {
                        per_rank[w as usize] += 1;
                    }
                }
                per_rank[ra] += matches;
                per_rank[rb] += matches;
                global += matches;
            }
            if bitmap_edges > 0 {
                stats.anchors_bitmap += 1;
            } else {
                stats.anchors_marking += 1;
            }
            for &wi in touched.iter() {
                bitmap[wi as usize] = 0;
            }
        }
        global
    }
}

/// Per-vertex triangle participation `t_A` (Def. 5) plus the global
/// total, via the default [`TriangleKernel::Auto`] tier.
pub fn vertex_triangles(g: &CsrGraph) -> TriangleCounts {
    vertex_triangles_with(g, TriangleKernel::Auto)
}

/// [`vertex_triangles`] with an explicit kernel tier. All tiers produce
/// bit-identical counts (pinned by the equivalence suite); the knob
/// exists for validation and benchmarking.
pub fn vertex_triangles_with(g: &CsrGraph, kernel: TriangleKernel) -> TriangleCounts {
    let _span = kron_obs::span::enter("analytics/vertex_triangles");
    let n = g.n() as usize;
    let k = Kernel::build(g, kernel);
    let arena = Arena::global();
    let mut per_rank = arena.take_words(n);
    let mut scratch = Scratch::take(arena, n, k.f.max_forward);
    let mut stats = KernelStats::default();
    let global = k.count_in(0..n, &mut per_rank, &mut scratch, &mut stats);
    stats.publish();
    TriangleCounts { per_vertex: k.f.to_vertex_space(&per_rank), global }
}

/// Global triangle count `τ_A`.
pub fn global_triangles(g: &CsrGraph) -> u64 {
    global_triangles_with(g, TriangleKernel::Auto)
}

/// [`global_triangles`] with an explicit kernel tier.
pub fn global_triangles_with(g: &CsrGraph, kernel: TriangleKernel) -> u64 {
    let _span = kron_obs::span::enter("analytics/global_triangles");
    let n = g.n() as usize;
    let k = Kernel::build(g, kernel);
    let arena = Arena::global();
    let mut per_rank = arena.take_words(n);
    let mut scratch = Scratch::take(arena, n, k.f.max_forward);
    let mut stats = KernelStats::default();
    let global = k.count_in(0..n, &mut per_rank, &mut scratch, &mut stats);
    stats.publish();
    global
}

/// Parallel [`vertex_triangles`] (`None` = machine parallelism).
///
/// The compact-forward anchor (rank) space is split across workers by
/// forward-arc weight; each worker counts into a private per-rank
/// vector (all scratch arena-recycled) and the vectors are summed in
/// worker order. Counts are exact integers, so the result is identical
/// to the sequential one for every thread count and kernel tier.
pub fn vertex_triangles_threads(g: &CsrGraph, threads: Option<usize>) -> TriangleCounts {
    vertex_triangles_threads_with(g, threads, TriangleKernel::Auto)
}

/// [`vertex_triangles_threads`] with an explicit kernel tier.
pub fn vertex_triangles_threads_with(
    g: &CsrGraph,
    threads: Option<usize>,
    kernel: TriangleKernel,
) -> TriangleCounts {
    let t = parallel::num_threads(threads);
    if t <= 1 {
        return vertex_triangles_with(g, kernel);
    }
    let _span = kron_obs::span::enter("analytics/vertex_triangles_threads");
    let n = g.n() as usize;
    let k = Kernel::build(g, kernel);
    let arena = Arena::global();
    let parts = parallel::map_ranges(k.f.anchor_ranges(t), |_, anchors| {
        let mut per_rank = arena.take_words(n);
        let mut scratch = Scratch::take(arena, n, k.f.max_forward);
        let mut stats = KernelStats::default();
        let count = k.count_in(anchors, &mut per_rank, &mut scratch, &mut stats);
        (per_rank, count, stats)
    });
    let mut per_rank = vec![0u64; n];
    let mut global = 0u64;
    let mut stats = KernelStats::default();
    for (part, count, part_stats) in parts {
        for (acc, &x) in per_rank.iter_mut().zip(part.iter()) {
            *acc += x;
        }
        global += count;
        stats.merge(part_stats);
    }
    stats.publish();
    TriangleCounts { per_vertex: k.f.to_vertex_space(&per_rank), global }
}

/// Parallel [`global_triangles`] (`None` = machine parallelism).
pub fn global_triangles_threads(g: &CsrGraph, threads: Option<usize>) -> u64 {
    global_triangles_threads_with(g, threads, TriangleKernel::Auto)
}

/// [`global_triangles_threads`] with an explicit kernel tier.
pub fn global_triangles_threads_with(
    g: &CsrGraph,
    threads: Option<usize>,
    kernel: TriangleKernel,
) -> u64 {
    let t = parallel::num_threads(threads);
    if t <= 1 {
        return global_triangles_with(g, kernel);
    }
    let _span = kron_obs::span::enter("analytics/global_triangles_threads");
    let n = g.n() as usize;
    let k = Kernel::build(g, kernel);
    let arena = Arena::global();
    let mut stats = KernelStats::default();
    let global = parallel::map_ranges(k.f.anchor_ranges(t), |_, anchors| {
        let mut per_rank = arena.take_words(n);
        let mut scratch = Scratch::take(arena, n, k.f.max_forward);
        let mut stats = KernelStats::default();
        let count = k.count_in(anchors, &mut per_rank, &mut scratch, &mut stats);
        (count, stats)
    })
    .into_iter()
    .map(|(count, part_stats)| {
        stats.merge(part_stats);
        count
    })
    .sum();
    stats.publish();
    global
}

/// Triangle participation at every edge (Def. 6):
/// `Δ_uv = |N(u) ∩ N(v)|` on the loop-free core.
pub fn edge_triangles(g: &CsrGraph) -> EdgeTriangles {
    let mut edges = Vec::new();
    let mut counts = Vec::new();
    for u in 0..g.n() {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
                counts.push(intersect_count(g.neighbors(u), g.neighbors(v), u, v));
            }
        }
    }
    EdgeTriangles { edges, counts }
}

/// Enumerates each triangle `{u, v, w}` with `u < v < w` exactly once.
///
/// Used directly by the probabilistic-edge-rejection experiment (§IV-C),
/// which filters enumerated triangles of `G_C` by edge-hash thresholds to
/// count triangles of every `G_{C,ν}` in one pass.
pub fn enumerate_triangles<F: FnMut(VertexId, VertexId, VertexId)>(g: &CsrGraph, visit: F) {
    enumerate_triangles_in(g, 0..g.n(), visit)
}

/// Enumerates each triangle `{u, v, w}` with `u < v < w` whose anchor (the
/// smallest vertex `u`) lies in `anchors`. Partitioning the anchor range
/// across workers partitions the triangle set exactly — the basis of the
/// parallel counters below.
pub fn enumerate_triangles_in<F: FnMut(VertexId, VertexId, VertexId)>(
    g: &CsrGraph,
    anchors: std::ops::Range<VertexId>,
    mut visit: F,
) {
    // Forward starts: for every row, the index of its first entry greater
    // than the row's own vertex — one binary search per row instead of
    // two per (u, v) pair. Rows are sorted, so `nu[forward_start[u]..]`
    // is exactly the identity-order forward list F(u) = { w ∈ N(u) :
    // w > u }, and for `v` at position `t` of `nu`, the entries of `nu`
    // above `v` are exactly `nu[t + 1..]`. These are the same slices the
    // per-pair binary searches located, so the visit order is
    // bit-identical to the old enumeration.
    let n = g.n() as usize;
    let forward_start: Vec<usize> =
        (0..n).map(|v| g.neighbors(v as u64).partition_point(|&w| w <= v as u64)).collect();
    for u in anchors {
        let nu = g.neighbors(u);
        for t in forward_start[u as usize]..nu.len() {
            let v = nu[t];
            // Walk the intersection of N(u) and N(v) above v.
            let nv = g.neighbors(v);
            let mut i = t + 1;
            let mut j = forward_start[v as usize];
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        visit(u, v, nu[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, complete_bipartite, cycle, path, star};

    #[test]
    fn clique_counts() {
        // K5: each vertex in C(4,2)=6 triangles, 10 total.
        let g = clique(5);
        let t = vertex_triangles(&g);
        assert_eq!(t.per_vertex, vec![6; 5]);
        assert_eq!(t.global, 10);
        assert_eq!(global_triangles(&g), 10);
        // Every edge of K5 lies in 3 triangles.
        let e = edge_triangles(&g);
        assert_eq!(e.len(), 10);
        assert!(e.iter().all(|(_, c)| c == 3));
        assert_eq!(e.get(0, 4), Some(3));
        assert_eq!(e.get(4, 0), Some(3));
    }

    #[test]
    fn parallel_counts_match_sequential() {
        use kron_graph::generators::erdos_renyi;
        for g in [clique(9), erdos_renyi(40, 0.3, 7), star(12), path(1)] {
            let sequential = vertex_triangles(&g);
            for threads in [1usize, 2, 3, 8] {
                let got = vertex_triangles_threads(&g, Some(threads));
                assert_eq!(got, sequential, "threads={threads}");
                assert_eq!(
                    global_triangles_threads(&g, Some(threads)),
                    sequential.global,
                    "threads={threads}"
                );
            }
            assert_eq!(vertex_triangles_threads(&g, None), sequential);
        }
    }

    #[test]
    fn compact_forward_matches_enumeration() {
        use kron_graph::generators::{barabasi_albert, erdos_renyi};
        // Skewed, random, and loopy graphs: the rank-ordered kernel must
        // agree with the identity-order enumeration everywhere.
        for g in [
            erdos_renyi(60, 0.2, 3),
            barabasi_albert(50, 4, 9),
            clique(7).with_full_self_loops(),
            star(15),
        ] {
            let n = g.n() as usize;
            let mut per_vertex = vec![0u64; n];
            let mut global = 0u64;
            enumerate_triangles(&g, |u, v, w| {
                per_vertex[u as usize] += 1;
                per_vertex[v as usize] += 1;
                per_vertex[w as usize] += 1;
                global += 1;
            });
            let got = vertex_triangles(&g);
            assert_eq!(got.per_vertex, per_vertex);
            assert_eq!(got.global, global);
            assert_eq!(global_triangles(&g), global);
        }
    }

    #[test]
    fn triangle_free_families() {
        for g in [path(6), cycle(6), star(7), complete_bipartite(3, 4)] {
            assert_eq!(global_triangles(&g), 0);
            assert!(vertex_triangles(&g).per_vertex.iter().all(|&t| t == 0));
            assert!(edge_triangles(&g).iter().all(|(_, c)| c == 0));
        }
    }

    #[test]
    fn self_loops_ignored() {
        let plain = clique(4);
        let looped = plain.with_full_self_loops();
        assert_eq!(vertex_triangles(&looped), vertex_triangles(&plain));
        let e = edge_triangles(&looped);
        // Self-loop "edges" are not canonical u<v pairs, so counts match.
        for ((u, v), c) in edge_triangles(&plain).iter() {
            assert_eq!(e.get(u, v), Some(c));
        }
    }

    #[test]
    fn single_triangle_counts() {
        let g = clique(3);
        let t = vertex_triangles(&g);
        assert_eq!(t.per_vertex, vec![1, 1, 1]);
        assert_eq!(t.global, 1);
        let e = edge_triangles(&g);
        assert_eq!(e.get(0, 1), Some(1));
        assert_eq!(e.get(1, 2), Some(1));
        assert_eq!(e.get(0, 2), Some(1));
    }

    #[test]
    fn edge_lookup_missing() {
        let g = path(4);
        let e = edge_triangles(&g);
        assert_eq!(e.get(0, 1), Some(0));
        assert_eq!(e.get(0, 3), None);
        assert!(!e.is_empty());
    }

    #[test]
    fn enumeration_visits_each_once_in_order() {
        let g = clique(4);
        let mut seen = Vec::new();
        enumerate_triangles(&g, |u, v, w| seen.push((u, v, w)));
        assert_eq!(seen.len(), 4);
        for &(u, v, w) in &seen {
            assert!(u < v && v < w);
        }
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn vertex_counts_consistent_with_edge_counts() {
        // t_u = (1/2) Σ_{v ∈ N(u)} Δ_uv on the loop-free core.
        use kron_graph::generators::erdos_renyi;
        let g = erdos_renyi(40, 0.25, 5);
        let tv = vertex_triangles(&g);
        let et = edge_triangles(&g);
        for u in 0..g.n() {
            let sum: u64 = g
                .neighbors(u)
                .iter()
                .filter(|&&v| v != u)
                .map(|&v| et.get(u, v).expect("edge exists"))
                .sum();
            assert_eq!(sum % 2, 0);
            assert_eq!(tv.per_vertex[u as usize], sum / 2, "vertex {u}");
        }
        // Global count = (1/3) Σ_v t_v.
        let total: u64 = tv.per_vertex.iter().sum();
        assert_eq!(total % 3, 0);
        assert_eq!(tv.global, total / 3);
    }

    #[test]
    fn matches_matrix_oracle() {
        // Def. 5/6 verbatim on the dense oracle: t = ½ diag((A−A∘I)³),
        // Δ = (A−A∘I) ∘ (A−A∘I)².
        use kron_graph::generators::erdos_renyi;
        use kron_linalg::DenseMatrix;
        let g = erdos_renyi(25, 0.3, 11).with_full_self_loops();
        let n = g.n() as usize;
        let mut a = DenseMatrix::zeros(n, n);
        for (u, v) in g.arcs() {
            a.set(u as usize, v as usize, 1);
        }
        let core = &a - &a.hadamard(&DenseMatrix::identity(n));
        let cubed = core.pow(3);
        let expected_t: Vec<u64> =
            cubed.diag_vector().iter().map(|&x| (x / 2) as u64).collect();
        assert_eq!(vertex_triangles(&g).per_vertex, expected_t);

        let delta = core.hadamard(&core.pow(2));
        let et = edge_triangles(&g);
        for ((u, v), c) in et.iter() {
            assert_eq!(delta.get(u as usize, v as usize) as u64, c, "edge ({u},{v})");
        }
    }
}
