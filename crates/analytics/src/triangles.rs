//! Triangle participation at vertices and edges (§IV, Def. 5 / Def. 6).
//!
//! Both definitions strip the diagonal first (`A − A ∘ I_A`), so all
//! routines here operate on the loop-free core of the input graph: a self
//! loop never participates in a triangle.
//!
//! The enumeration order follows the degree-ordered intersection approach
//! of Chiba–Nishizeki (the paper's reference [22]): each triangle
//! `{u, v, w}` with `u < v < w` is visited exactly once.

use kron_graph::{parallel, CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Vertex triangle counts plus the global total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangleCounts {
    /// `per_vertex[v]` = number of triangles containing `v`
    /// (`t_A` of Def. 5).
    pub per_vertex: Vec<u64>,
    /// Total distinct triangles (`τ_A = (1/3) Σ t_v`).
    pub global: u64,
}

/// Edge triangle counts (`Δ_A` of Def. 6), stored per canonical edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTriangles {
    edges: Vec<(VertexId, VertexId)>,
    counts: Vec<u64>,
}

impl EdgeTriangles {
    /// The triangle count at edge `{u, v}`; `None` when the edge is absent
    /// (or is a self loop, which by Def. 6 has no triangle count).
    pub fn get(&self, u: VertexId, v: VertexId) -> Option<u64> {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).ok().map(|idx| self.counts[idx])
    }

    /// Iterates `((u, v), Δ_uv)` over canonical edges (`u < v`).
    pub fn iter(&self) -> impl Iterator<Item = ((VertexId, VertexId), u64)> + '_ {
        self.edges.iter().copied().zip(self.counts.iter().copied())
    }

    /// Number of stored (canonical, loop-free) edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph had no loop-free edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Counts common neighbors of two sorted neighbor slices, skipping entries
/// equal to `a` or `b` (self-loop arcs in either list).
fn intersect_count(left: &[VertexId], right: &[VertexId], a: VertexId, b: VertexId) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < left.len() && j < right.len() {
        match left[i].cmp(&right[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let w = left[i];
                if w != a && w != b {
                    count += 1;
                }
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Triangle participation at every vertex (Def. 5) and the global count.
///
/// Expects an undirected graph; self loops are ignored per the definition.
///
/// ```
/// use kron_analytics::triangles::vertex_triangles;
/// use kron_graph::generators::clique;
///
/// let t = vertex_triangles(&clique(4));
/// assert_eq!(t.per_vertex, vec![3, 3, 3, 3]);
/// assert_eq!(t.global, 4);
/// ```
pub fn vertex_triangles(g: &CsrGraph) -> TriangleCounts {
    let n = g.n() as usize;
    let mut per_vertex = vec![0u64; n];
    let mut triple_sum = 0u64;
    enumerate_triangles(g, |u, v, w| {
        per_vertex[u as usize] += 1;
        per_vertex[v as usize] += 1;
        per_vertex[w as usize] += 1;
        triple_sum += 1;
    });
    TriangleCounts { per_vertex, global: triple_sum }
}

/// Global triangle count `τ_A`.
pub fn global_triangles(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    enumerate_triangles(g, |_, _, _| count += 1);
    count
}

/// Parallel [`vertex_triangles`] (`None` = machine parallelism).
///
/// Anchor vertices are split across workers by degree weight; each worker
/// counts into a private per-vertex vector and the vectors are summed in
/// worker order. Counts are exact integers, so the result is identical to
/// the sequential one.
pub fn vertex_triangles_threads(g: &CsrGraph, threads: Option<usize>) -> TriangleCounts {
    let t = parallel::num_threads(threads);
    if t <= 1 {
        return vertex_triangles(g);
    }
    let n = g.n() as usize;
    let parts = parallel::map_ranges(anchor_ranges(g, t), |_, anchors| {
        let mut per_vertex = vec![0u64; n];
        let mut triple_sum = 0u64;
        enumerate_triangles_in(g, anchors.start as u64..anchors.end as u64, |u, v, w| {
            per_vertex[u as usize] += 1;
            per_vertex[v as usize] += 1;
            per_vertex[w as usize] += 1;
            triple_sum += 1;
        });
        (per_vertex, triple_sum)
    });
    let mut per_vertex = vec![0u64; n];
    let mut global = 0u64;
    for (part, count) in parts {
        for (acc, x) in per_vertex.iter_mut().zip(part) {
            *acc += x;
        }
        global += count;
    }
    TriangleCounts { per_vertex, global }
}

/// Parallel [`global_triangles`] (`None` = machine parallelism).
pub fn global_triangles_threads(g: &CsrGraph, threads: Option<usize>) -> u64 {
    let t = parallel::num_threads(threads);
    if t <= 1 {
        return global_triangles(g);
    }
    parallel::map_ranges(anchor_ranges(g, t), |_, anchors| {
        let mut count = 0u64;
        enumerate_triangles_in(g, anchors.start as u64..anchors.end as u64, |_, _, _| {
            count += 1
        });
        count
    })
    .into_iter()
    .sum()
}

/// Splits the anchor-vertex space into `chunks` ranges weighted by degree,
/// so high-degree rows do not serialize one worker.
fn anchor_ranges(g: &CsrGraph, chunks: usize) -> Vec<std::ops::Range<usize>> {
    let n = g.n() as usize;
    let mut prefix = vec![0usize; n + 1];
    for v in 0..n {
        prefix[v + 1] = prefix[v] + g.degree(v as u64) as usize;
    }
    parallel::split_by_weight(&prefix, chunks)
}

/// Triangle participation at every edge (Def. 6):
/// `Δ_uv = |N(u) ∩ N(v)|` on the loop-free core.
pub fn edge_triangles(g: &CsrGraph) -> EdgeTriangles {
    let mut edges = Vec::new();
    let mut counts = Vec::new();
    for u in 0..g.n() {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
                counts.push(intersect_count(g.neighbors(u), g.neighbors(v), u, v));
            }
        }
    }
    EdgeTriangles { edges, counts }
}

/// Enumerates each triangle `{u, v, w}` with `u < v < w` exactly once.
///
/// Used directly by the probabilistic-edge-rejection experiment (§IV-C),
/// which filters enumerated triangles of `G_C` by edge-hash thresholds to
/// count triangles of every `G_{C,ν}` in one pass.
pub fn enumerate_triangles<F: FnMut(VertexId, VertexId, VertexId)>(g: &CsrGraph, visit: F) {
    enumerate_triangles_in(g, 0..g.n(), visit)
}

/// Enumerates each triangle `{u, v, w}` with `u < v < w` whose anchor (the
/// smallest vertex `u`) lies in `anchors`. Partitioning the anchor range
/// across workers partitions the triangle set exactly — the basis of the
/// parallel counters below.
pub fn enumerate_triangles_in<F: FnMut(VertexId, VertexId, VertexId)>(
    g: &CsrGraph,
    anchors: std::ops::Range<VertexId>,
    mut visit: F,
) {
    for u in anchors {
        let nu = g.neighbors(u);
        for &v in nu {
            if v <= u {
                continue;
            }
            // Walk the intersection of N(u) and N(v) above v.
            let nv = g.neighbors(v);
            let mut i = match nu.binary_search(&(v + 1)) {
                Ok(p) | Err(p) => p,
            };
            let mut j = match nv.binary_search(&(v + 1)) {
                Ok(p) | Err(p) => p,
            };
            while i < nu.len() && j < nv.len() {
                match nu[i].cmp(&nv[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        visit(u, v, nu[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, complete_bipartite, cycle, path, star};

    #[test]
    fn clique_counts() {
        // K5: each vertex in C(4,2)=6 triangles, 10 total.
        let g = clique(5);
        let t = vertex_triangles(&g);
        assert_eq!(t.per_vertex, vec![6; 5]);
        assert_eq!(t.global, 10);
        assert_eq!(global_triangles(&g), 10);
        // Every edge of K5 lies in 3 triangles.
        let e = edge_triangles(&g);
        assert_eq!(e.len(), 10);
        assert!(e.iter().all(|(_, c)| c == 3));
        assert_eq!(e.get(0, 4), Some(3));
        assert_eq!(e.get(4, 0), Some(3));
    }

    #[test]
    fn parallel_counts_match_sequential() {
        use kron_graph::generators::erdos_renyi;
        for g in [clique(9), erdos_renyi(40, 0.3, 7), star(12), path(1)] {
            let sequential = vertex_triangles(&g);
            for threads in [1usize, 2, 3, 8] {
                let got = vertex_triangles_threads(&g, Some(threads));
                assert_eq!(got, sequential, "threads={threads}");
                assert_eq!(
                    global_triangles_threads(&g, Some(threads)),
                    sequential.global,
                    "threads={threads}"
                );
            }
            assert_eq!(vertex_triangles_threads(&g, None), sequential);
        }
    }

    #[test]
    fn triangle_free_families() {
        for g in [path(6), cycle(6), star(7), complete_bipartite(3, 4)] {
            assert_eq!(global_triangles(&g), 0);
            assert!(vertex_triangles(&g).per_vertex.iter().all(|&t| t == 0));
            assert!(edge_triangles(&g).iter().all(|(_, c)| c == 0));
        }
    }

    #[test]
    fn self_loops_ignored() {
        let plain = clique(4);
        let looped = plain.with_full_self_loops();
        assert_eq!(vertex_triangles(&looped), vertex_triangles(&plain));
        let e = edge_triangles(&looped);
        // Self-loop "edges" are not canonical u<v pairs, so counts match.
        for ((u, v), c) in edge_triangles(&plain).iter() {
            assert_eq!(e.get(u, v), Some(c));
        }
    }

    #[test]
    fn single_triangle_counts() {
        let g = clique(3);
        let t = vertex_triangles(&g);
        assert_eq!(t.per_vertex, vec![1, 1, 1]);
        assert_eq!(t.global, 1);
        let e = edge_triangles(&g);
        assert_eq!(e.get(0, 1), Some(1));
        assert_eq!(e.get(1, 2), Some(1));
        assert_eq!(e.get(0, 2), Some(1));
    }

    #[test]
    fn edge_lookup_missing() {
        let g = path(4);
        let e = edge_triangles(&g);
        assert_eq!(e.get(0, 1), Some(0));
        assert_eq!(e.get(0, 3), None);
        assert!(!e.is_empty());
    }

    #[test]
    fn enumeration_visits_each_once_in_order() {
        let g = clique(4);
        let mut seen = Vec::new();
        enumerate_triangles(&g, |u, v, w| seen.push((u, v, w)));
        assert_eq!(seen.len(), 4);
        for &(u, v, w) in &seen {
            assert!(u < v && v < w);
        }
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len());
    }

    #[test]
    fn vertex_counts_consistent_with_edge_counts() {
        // t_u = (1/2) Σ_{v ∈ N(u)} Δ_uv on the loop-free core.
        use kron_graph::generators::erdos_renyi;
        let g = erdos_renyi(40, 0.25, 5);
        let tv = vertex_triangles(&g);
        let et = edge_triangles(&g);
        for u in 0..g.n() {
            let sum: u64 = g
                .neighbors(u)
                .iter()
                .filter(|&&v| v != u)
                .map(|&v| et.get(u, v).expect("edge exists"))
                .sum();
            assert_eq!(sum % 2, 0);
            assert_eq!(tv.per_vertex[u as usize], sum / 2, "vertex {u}");
        }
        // Global count = (1/3) Σ_v t_v.
        let total: u64 = tv.per_vertex.iter().sum();
        assert_eq!(total % 3, 0);
        assert_eq!(tv.global, total / 3);
    }

    #[test]
    fn matches_matrix_oracle() {
        // Def. 5/6 verbatim on the dense oracle: t = ½ diag((A−A∘I)³),
        // Δ = (A−A∘I) ∘ (A−A∘I)².
        use kron_graph::generators::erdos_renyi;
        use kron_linalg::DenseMatrix;
        let g = erdos_renyi(25, 0.3, 11).with_full_self_loops();
        let n = g.n() as usize;
        let mut a = DenseMatrix::zeros(n, n);
        for (u, v) in g.arcs() {
            a.set(u as usize, v as usize, 1);
        }
        let core = &a - &a.hadamard(&DenseMatrix::identity(n));
        let cubed = core.pow(3);
        let expected_t: Vec<u64> =
            cubed.diag_vector().iter().map(|&x| (x / 2) as u64).collect();
        assert_eq!(vertex_triangles(&g).per_vertex, expected_t);

        let delta = core.hadamard(&core.pow(2));
        let et = edge_triangles(&g);
        for ((u, v), c) in et.iter() {
            assert_eq!(delta.get(u as usize, v as usize) as u64, c, "edge ({u},{v})");
        }
    }
}
