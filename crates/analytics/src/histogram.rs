//! Integer-valued histograms used for eccentricity/degree distributions
//! (Fig. 1 of the paper) and the closeness fast path.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A histogram of `u64` values with exact per-value counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Builds from an iterator of samples.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut h = Histogram::new();
        for v in values {
            h.add(v);
        }
        h
    }

    /// Records one sample.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `count` samples of `value`.
    pub fn add_count(&mut self, value: u64, count: u64) {
        if count > 0 {
            *self.counts.entry(value).or_insert(0) += count;
            self.total += count;
        }
    }

    /// Multiplicity of `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let sum: u64 = self.counts.iter().map(|(&v, &c)| v * c).sum();
        Some(sum as f64 / self.total as f64)
    }

    /// Iterates `(value, count)` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of samples `≤ value`.
    pub fn cumulative(&self, value: u64) -> u64 {
        self.counts.range(..=value).map(|(_, &c)| c).sum()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.add_count(v, c);
        }
    }

    /// Dense count vector over `0..=max` (empty when no samples).
    pub fn to_dense(&self) -> Vec<u64> {
        match self.max() {
            None => vec![],
            Some(max) => {
                let mut dense = vec![0u64; max as usize + 1];
                for (v, c) in self.iter() {
                    dense[v as usize] = c;
                }
                dense
            }
        }
    }
}

impl fmt::Display for Histogram {
    /// Renders an ASCII bar chart, one row per value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max_count = self.counts.values().copied().max().unwrap_or(0);
        for (v, c) in self.iter() {
            let width = (c * 50).checked_div(max_count).unwrap_or(0) as usize;
            writeln!(f, "{v:>6} | {:<50} {c}", "#".repeat(width))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accounting() {
        let h = Histogram::from_values([3, 1, 3, 3, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(9), 0);
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(3));
        assert_eq!(h.mean(), Some(12.0 / 5.0));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert!(h.to_dense().is_empty());
    }

    #[test]
    fn cumulative_counts() {
        let h = Histogram::from_values([1, 2, 2, 5]);
        assert_eq!(h.cumulative(0), 0);
        assert_eq!(h.cumulative(1), 1);
        assert_eq!(h.cumulative(2), 3);
        assert_eq!(h.cumulative(4), 3);
        assert_eq!(h.cumulative(5), 4);
    }

    #[test]
    fn merge_and_add_count() {
        let mut a = Histogram::from_values([1, 1]);
        let b = Histogram::from_values([1, 2]);
        a.merge(&b);
        assert_eq!(a.count(1), 3);
        assert_eq!(a.count(2), 1);
        assert_eq!(a.total(), 4);
        a.add_count(7, 0);
        assert_eq!(a.count(7), 0);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn dense_conversion() {
        let h = Histogram::from_values([0, 2, 2]);
        assert_eq!(h.to_dense(), vec![1, 0, 2]);
    }

    #[test]
    fn display_renders_rows() {
        let h = Histogram::from_values([1, 1, 2]);
        let text = h.to_string();
        assert!(text.contains("1 |"));
        assert!(text.contains("2 |"));
    }
}
