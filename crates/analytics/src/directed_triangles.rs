//! Directed triangle participation by role.
//!
//! The paper's contribution (b) extends its authors' prior work [11],
//! which derives triangle formulas for "the many types of directed
//! graphs". A directed triangle on `{u, v, w}` is either
//!
//! * a **cycle** `u → v → w → u`, or
//! * a **transitive** triangle `s → m`, `m → t`, `s → t`, with the three
//!   distinct roles *source* `s`, *middle* `m`, *target* `t`.
//!
//! Per-vertex role counts have clean matrix forms on a loop-free
//! adjacency `A` (used verbatim as the test oracle):
//!
//! ```text
//! cycle(v)  = (A³)_vv                (ordered closed 3-walks = cycles ×1 per orientation)
//! middle(m) = [(Aᵗ ∘ (A Aᵗ)) 1]_m
//! source(s) = [(A  ∘ (A A )) 1]_s
//! target(t) = [(Aᵗ ∘ (Aᵗ Aᵗ)) 1]_t
//! ```
//!
//! Every right-hand side is a Hadamard/product combination that
//! distributes over `⊗` (Prop. 1(d) + Prop. 2(e)), which is what gives
//! the product laws in `kron-core::directed`.

use kron_graph::{CsrGraph, VertexId};

/// Per-vertex directed triangle role counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirectedTriangleCounts {
    /// `cycle[v]` = directed 3-cycles through `v` (each orientation of a
    /// cyclic triple counted once).
    pub cycle: Vec<u64>,
    /// `source[v]` = transitive triangles with `v` as the source.
    pub source: Vec<u64>,
    /// `middle[v]` = transitive triangles with `v` as the middle.
    pub middle: Vec<u64>,
    /// `target[v]` = transitive triangles with `v` as the target.
    pub target: Vec<u64>,
}

impl DirectedTriangleCounts {
    /// Total directed 3-cycles (`Σ cycle / 3`).
    pub fn total_cycles(&self) -> u64 {
        let sum: u64 = self.cycle.iter().sum();
        debug_assert_eq!(sum % 3, 0);
        sum / 3
    }

    /// Total transitive triangles (each has exactly one source).
    pub fn total_transitive(&self) -> u64 {
        self.source.iter().sum()
    }
}

/// Counts every directed triangle role for all vertices.
///
/// Self loops are ignored (a loop cannot participate in a triangle on
/// three distinct... a triangle here means three distinct vertices).
/// `O(Σ_v d⁺(v) · d(v))` via per-wedge adjacency checks — fine at
/// factor/validation scale, and simple enough to trust as a reference.
pub fn directed_triangles(g: &CsrGraph) -> DirectedTriangleCounts {
    let n = g.n() as usize;
    let mut counts = DirectedTriangleCounts {
        cycle: vec![0; n],
        source: vec![0; n],
        middle: vec![0; n],
        target: vec![0; n],
    };
    // Walk all directed wedges u → v → w (u, v, w distinct) once.
    for v in 0..g.n() {
        for &u in in_neighbors_of(g, v).iter() {
            if u == v {
                continue;
            }
            for &w in g.neighbors(v) {
                if w == v || w == u {
                    continue;
                }
                // wedge u → v → w
                if g.has_arc(w, u) {
                    // cycle u → v → w → u: counted once per starting
                    // vertex when we credit only vertex v here.
                    counts.cycle[v as usize] += 1;
                }
                if g.has_arc(u, w) {
                    // transitive triangle: u source, v middle, w target.
                    counts.source[u as usize] += 1;
                    counts.middle[v as usize] += 1;
                    counts.target[w as usize] += 1;
                }
            }
        }
    }
    counts
}

/// In-neighbors of `v` (O(nnz) scan; cached by callers that need it hot).
fn in_neighbors_of(g: &CsrGraph, v: VertexId) -> Vec<VertexId> {
    (0..g.n()).filter(|&u| g.has_arc(u, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::clique;
    use kron_graph::CsrGraph;

    fn directed_cycle3() -> CsrGraph {
        CsrGraph::from_arcs(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    fn transitive3() -> CsrGraph {
        CsrGraph::from_arcs(3, vec![(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn single_cycle_triangle() {
        let c = directed_triangles(&directed_cycle3());
        assert_eq!(c.cycle, vec![1, 1, 1]);
        assert_eq!(c.total_cycles(), 1);
        assert_eq!(c.total_transitive(), 0);
        assert_eq!(c.source, vec![0, 0, 0]);
    }

    #[test]
    fn single_transitive_triangle() {
        let c = directed_triangles(&transitive3());
        assert_eq!(c.cycle, vec![0, 0, 0]);
        assert_eq!(c.source, vec![1, 0, 0]);
        assert_eq!(c.middle, vec![0, 1, 0]);
        assert_eq!(c.target, vec![0, 0, 1]);
        assert_eq!(c.total_transitive(), 1);
    }

    #[test]
    fn undirected_triangle_decomposes() {
        // K3 with both arcs everywhere: each unordered triangle yields 2
        // cycles (both orientations) and 6 transitive triangles (3 choices
        // of the reciprocated pair... enumerate: ordered (s,m,t) distinct
        // with all three arcs present = 6 permutations).
        let c = directed_triangles(&clique(3));
        assert_eq!(c.total_cycles(), 2);
        assert_eq!(c.total_transitive(), 6);
        assert_eq!(c.cycle, vec![2, 2, 2]);
        assert_eq!(c.source, vec![2, 2, 2]);
        assert_eq!(c.middle, vec![2, 2, 2]);
        assert_eq!(c.target, vec![2, 2, 2]);
    }

    #[test]
    fn self_loops_ignored() {
        let plain = directed_cycle3();
        let looped = plain.with_full_self_loops();
        assert_eq!(directed_triangles(&plain), directed_triangles(&looped));
    }

    #[test]
    fn matches_matrix_oracle() {
        // The doc formulas, evaluated with the dense oracle on a random
        // directed graph.
        use kron_linalg::DenseMatrix;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 10u64;
        let mut rng = StdRng::seed_from_u64(77);
        let mut arcs = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if u != v && rng.gen::<f64>() < 0.3 {
                    arcs.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_arcs(n, arcs).unwrap();
        let counts = directed_triangles(&g);

        let mut a = DenseMatrix::zeros(n as usize, n as usize);
        for (u, v) in g.arcs() {
            a.set(u as usize, v as usize, 1);
        }
        let at = a.transpose();
        // cycle(v) = (A³)_vv
        let cubed = a.pow(3);
        let cycle: Vec<u64> = cubed.diag_vector().iter().map(|&x| x as u64).collect();
        assert_eq!(counts.cycle, cycle);
        // middle(m) = [(Aᵗ ∘ (A Aᵗ)) 1]_m
        let middle: Vec<u64> = at
            .hadamard(&(&a * &at))
            .row_sums()
            .iter()
            .map(|&x| x as u64)
            .collect();
        assert_eq!(counts.middle, middle);
        // source(s) = [(A ∘ (A A)) 1]_s
        let source: Vec<u64> = a
            .hadamard(&(&a * &a))
            .row_sums()
            .iter()
            .map(|&x| x as u64)
            .collect();
        assert_eq!(counts.source, source);
        // target(t) = [(Aᵗ ∘ (Aᵗ Aᵗ)) 1]_t
        let target: Vec<u64> = at
            .hadamard(&(&at * &at))
            .row_sums()
            .iter()
            .map(|&x| x as u64)
            .collect();
        assert_eq!(counts.target, target);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_arcs(4, vec![]).unwrap();
        let c = directed_triangles(&g);
        assert_eq!(c.total_cycles(), 0);
        assert_eq!(c.total_transitive(), 0);
    }
}
