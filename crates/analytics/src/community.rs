//! Community edge counts and densities (§VI, Def. 13).
//!
//! For a vertex set `S`: the internal edge count `m_in(S) = ½ 1ᵗ_S A 1_S`
//! and external edge count `m_out(S) = 1ᵗ_S A (1 − 1_S)`, with densities
//!
//! ```text
//! ρ_in(S)  = 2 m_in(S) / (|S| (|S| − 1))
//! ρ_out(S) =   m_out(S) / (|S| (n − |S|))
//! ```
//!
//! Following Thm. 6's `[C − I_C]` convention, the diagonal is excluded:
//! self loops contribute to neither count.

use kron_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Edge counts and densities of one vertex set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityProfile {
    /// `|S|`.
    pub size: u64,
    /// Internal (within-set) undirected edge count, self loops excluded.
    pub m_in: u64,
    /// External (set-to-complement) edge count.
    pub m_out: u64,
    /// Internal edge density `ρ_in`.
    pub rho_in: f64,
    /// External edge density `ρ_out`.
    pub rho_out: f64,
}

/// Computes the profile of the vertex set `members` within `g`.
///
/// `members` need not be sorted; duplicates are ignored. Expects an
/// undirected graph.
pub fn community_profile(g: &CsrGraph, members: &[VertexId]) -> CommunityProfile {
    let mut in_set = vec![false; g.n() as usize];
    let mut size = 0u64;
    for &v in members {
        if !in_set[v as usize] {
            in_set[v as usize] = true;
            size += 1;
        }
    }
    let (m_in, m_out) = edge_counts_from_mask(g, &in_set);
    profile_from_counts(g.n(), size, m_in, m_out)
}

fn edge_counts_from_mask(g: &CsrGraph, in_set: &[bool]) -> (u64, u64) {
    let mut internal_arcs = 0u64;
    let mut m_out = 0u64;
    for u in 0..g.n() {
        if !in_set[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            if v == u {
                continue; // diagonal excluded per [C − I_C]
            }
            if in_set[v as usize] {
                internal_arcs += 1;
            } else {
                m_out += 1;
            }
        }
    }
    (internal_arcs / 2, m_out)
}

fn profile_from_counts(n: u64, size: u64, m_in: u64, m_out: u64) -> CommunityProfile {
    let rho_in = if size >= 2 {
        2.0 * m_in as f64 / (size as f64 * (size - 1) as f64)
    } else {
        0.0
    };
    let rho_out = if size >= 1 && size < n {
        m_out as f64 / (size as f64 * (n - size) as f64)
    } else {
        0.0
    };
    CommunityProfile { size, m_in, m_out, rho_in, rho_out }
}

/// Profiles every part of a non-overlapping partition given per-vertex
/// labels in `0..num_parts` (Def. 15). Single pass over the arcs.
pub fn partition_profiles(g: &CsrGraph, labels: &[u32], num_parts: usize) -> Vec<CommunityProfile> {
    assert_eq!(labels.len(), g.n() as usize, "one label per vertex");
    let mut sizes = vec![0u64; num_parts];
    for &l in labels {
        assert!((l as usize) < num_parts, "label {l} out of range");
        sizes[l as usize] += 1;
    }
    let mut internal_arcs = vec![0u64; num_parts];
    let mut m_out = vec![0u64; num_parts];
    for u in 0..g.n() {
        let lu = labels[u as usize] as usize;
        for &v in g.neighbors(u) {
            if v == u {
                continue;
            }
            let lv = labels[v as usize] as usize;
            if lu == lv {
                internal_arcs[lu] += 1;
            } else {
                m_out[lu] += 1;
            }
        }
    }
    (0..num_parts)
        .map(|p| profile_from_counts(g.n(), sizes[p], internal_arcs[p] / 2, m_out[p]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, complete_bipartite, disjoint_cliques};

    #[test]
    fn clique_subset() {
        let g = clique(6);
        let p = community_profile(&g, &[0, 1, 2]);
        assert_eq!(p.size, 3);
        assert_eq!(p.m_in, 3);
        assert_eq!(p.m_out, 3 * 3);
        assert!((p.rho_in - 1.0).abs() < 1e-12);
        assert!((p.rho_out - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_cliques_perfect_communities() {
        let g = disjoint_cliques(3, 4);
        let labels: Vec<u32> = (0..12).map(|v| v / 4).collect();
        let profiles = partition_profiles(&g, &labels, 3);
        for p in &profiles {
            assert_eq!(p.size, 4);
            assert_eq!(p.m_in, 6);
            assert_eq!(p.m_out, 0);
            assert!((p.rho_in - 1.0).abs() < 1e-12);
            assert_eq!(p.rho_out, 0.0);
        }
    }

    #[test]
    fn bipartite_side_has_no_internal_edges() {
        let g = complete_bipartite(3, 4);
        let p = community_profile(&g, &[0, 1, 2]);
        assert_eq!(p.m_in, 0);
        assert_eq!(p.m_out, 12);
        assert_eq!(p.rho_in, 0.0);
        assert!((p.rho_out - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_and_order_ignored() {
        let g = clique(5);
        let a = community_profile(&g, &[0, 1, 2]);
        let b = community_profile(&g, &[2, 0, 1, 1, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn self_loops_excluded() {
        let g = clique(4).with_full_self_loops();
        let p = community_profile(&g, &[0, 1]);
        assert_eq!(p.m_in, 1);
        assert_eq!(p.m_out, 4);
    }

    #[test]
    fn degenerate_sets() {
        let g = clique(4);
        let single = community_profile(&g, &[0]);
        assert_eq!(single.m_in, 0);
        assert_eq!(single.rho_in, 0.0);
        assert_eq!(single.m_out, 3);
        let all = community_profile(&g, &[0, 1, 2, 3]);
        assert_eq!(all.m_out, 0);
        assert_eq!(all.rho_out, 0.0);
        assert!((all.rho_in - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partition_matches_per_set_computation() {
        use kron_graph::generators::erdos_renyi;
        let g = erdos_renyi(30, 0.2, 3);
        let labels: Vec<u32> = (0..30).map(|v| (v % 3) as u32).collect();
        let profiles = partition_profiles(&g, &labels, 3);
        for part in 0..3u32 {
            let members: Vec<u64> = (0..30u64)
                .filter(|&v| labels[v as usize] == part)
                .collect();
            assert_eq!(profiles[part as usize], community_profile(&g, &members));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_bad_labels() {
        let g = clique(3);
        partition_profiles(&g, &[0, 1, 5], 2);
    }

    #[test]
    fn matches_quadratic_form_oracle() {
        // Def. 13 verbatim: m_in = ½ 1ᵗ_S (A − A∘I) 1_S,
        // m_out = 1ᵗ_S (A − A∘I) (1 − 1_S).
        use kron_graph::generators::erdos_renyi;
        use kron_linalg::DenseMatrix;
        let g = erdos_renyi(20, 0.3, 8).with_full_self_loops();
        let n = g.n() as usize;
        let mut a = DenseMatrix::zeros(n, n);
        for (u, v) in g.arcs() {
            a.set(u as usize, v as usize, 1);
        }
        let core = &a - &a.hadamard(&DenseMatrix::identity(n));
        let members: Vec<u64> = vec![0, 3, 4, 7, 11];
        let ind: Vec<i64> = (0..n as u64)
            .map(|v| i64::from(members.contains(&v)))
            .collect();
        let ones = vec![1i64; n];
        let comp: Vec<i64> = ind.iter().map(|&x| 1 - x).collect();
        let p = community_profile(&g, &members);
        assert_eq!(p.m_in as i64, core.bilinear(&ind, &ind) / 2);
        assert_eq!(p.m_out as i64, core.bilinear(&ind, &comp));
        let _ = ones;
    }
}
