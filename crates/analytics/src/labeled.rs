//! Label-restricted triangle statistics.
//!
//! The paper's contribution (b) extends its authors' prior work [11],
//! which also covers *labeled* graphs. The primitive that Kronecker-
//! factors cleanly is the **ordered labeled triangle walk** count: for a
//! loop-free adjacency `A`, vertex labels `ℓ(·)`, and a label pair
//! `(ℓ₁, ℓ₂)`,
//!
//! ```text
//! w_v(ℓ₁, ℓ₂) = #{ (x, y) : A_vx A_xy A_yv = 1, ℓ(x) = ℓ₁, ℓ(y) = ℓ₂ }
//!             = diag(A M_{ℓ₁} A M_{ℓ₂} A)_v
//! ```
//!
//! with `M_ℓ` the diagonal label mask. Loop-freeness makes every such
//! closed 3-walk a genuine triangle, so
//! `Σ_{ℓ₁,ℓ₂} w_v(ℓ₁,ℓ₂) = 2 t_v` for undirected `A` (two orientations
//! per unordered triangle). The matrix form is a chain of products and
//! diagonal masks — exactly the shape that distributes over `⊗`
//! (see `kron-core::labeled`).

use kron_graph::{CsrGraph, VertexId};

use crate::triangles::enumerate_triangles;

/// A graph with a dense `u32` label per vertex.
#[derive(Debug, Clone)]
pub struct LabeledGraph {
    /// The structure (expected undirected and loop-free for triangle use).
    pub graph: CsrGraph,
    /// `labels[v] ∈ 0..num_labels`.
    pub labels: Vec<u32>,
    /// Number of distinct label values.
    pub num_labels: usize,
}

impl LabeledGraph {
    /// Wraps a graph with labels, validating lengths and ranges.
    pub fn new(graph: CsrGraph, labels: Vec<u32>, num_labels: usize) -> Self {
        assert_eq!(labels.len(), graph.n() as usize, "one label per vertex");
        assert!(
            labels.iter().all(|&l| (l as usize) < num_labels),
            "label out of range"
        );
        LabeledGraph { graph, labels, num_labels }
    }

    /// Label of vertex `v`.
    pub fn label(&self, v: VertexId) -> u32 {
        self.labels[v as usize]
    }
}

/// Per-vertex ordered labeled triangle-walk counts: the returned table
/// `t` is indexed `t[v][ℓ₁ · num_labels + ℓ₂]`.
///
/// Computed by triangle enumeration (each unordered triangle contributes
/// its six ordered walks), which serves as the reference against the
/// masked-matrix definition in tests.
pub fn labeled_triangle_walks(lg: &LabeledGraph) -> Vec<Vec<u64>> {
    let k = lg.num_labels;
    let mut table = vec![vec![0u64; k * k]; lg.graph.n() as usize];
    enumerate_triangles(&lg.graph, |u, v, w| {
        let (lu, lv, lw) = (lg.label(u), lg.label(v), lg.label(w));
        let mut credit = |at: VertexId, l1: u32, l2: u32| {
            table[at as usize][l1 as usize * k + l2 as usize] += 1;
        };
        // Both orientations of the triangle as seen from each corner.
        credit(u, lv, lw);
        credit(u, lw, lv);
        credit(v, lu, lw);
        credit(v, lw, lu);
        credit(w, lu, lv);
        credit(w, lv, lu);
    });
    table
}

/// Global labeled triangle census: unordered triangles by sorted label
/// multiset, indexed by `(ℓ_a ≤ ℓ_b ≤ ℓ_c)` flattened via
/// [`census_index`].
pub fn labeled_triangle_census(lg: &LabeledGraph) -> Vec<u64> {
    let k = lg.num_labels;
    let mut census = vec![0u64; k * k * k];
    enumerate_triangles(&lg.graph, |u, v, w| {
        let mut ls = [lg.label(u), lg.label(v), lg.label(w)];
        ls.sort_unstable();
        census[census_index(k, ls[0], ls[1], ls[2])] += 1;
    });
    census
}

/// Flat index of a sorted label triple in the census table.
pub fn census_index(num_labels: usize, l1: u32, l2: u32, l3: u32) -> usize {
    debug_assert!(l1 <= l2 && l2 <= l3);
    (l1 as usize * num_labels + l2 as usize) * num_labels + l3 as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::vertex_triangles;
    use kron_graph::generators::{clique, erdos_renyi};

    fn two_colored_k4() -> LabeledGraph {
        LabeledGraph::new(clique(4), vec![0, 0, 1, 1], 2)
    }

    #[test]
    fn walks_sum_to_twice_triangles() {
        let lg = LabeledGraph::new(erdos_renyi(12, 0.5, 61), (0..12).map(|v| v % 3).collect(), 3);
        let walks = labeled_triangle_walks(&lg);
        let t = vertex_triangles(&lg.graph).per_vertex;
        for (v, row) in walks.iter().enumerate() {
            let sum: u64 = row.iter().sum();
            assert_eq!(sum, 2 * t[v], "vertex {v}");
        }
    }

    #[test]
    fn walks_match_masked_matrix_oracle() {
        use kron_linalg::DenseMatrix;
        let lg = LabeledGraph::new(erdos_renyi(9, 0.5, 62), (0..9).map(|v| v % 2).collect(), 2);
        let n = lg.graph.n() as usize;
        let mut a = DenseMatrix::zeros(n, n);
        for (u, v) in lg.graph.arcs() {
            a.set(u as usize, v as usize, 1);
        }
        let mask = |l: u32| {
            let mut m = DenseMatrix::zeros(n, n);
            for v in 0..n {
                if lg.labels[v] == l {
                    m.set(v, v, 1);
                }
            }
            m
        };
        let walks = labeled_triangle_walks(&lg);
        for l1 in 0..2u32 {
            for l2 in 0..2u32 {
                let chain = &(&(&(&a * &mask(l1)) * &a) * &mask(l2)) * &a;
                for (v, row) in walks.iter().enumerate() {
                    assert_eq!(
                        row[(l1 as usize) * 2 + l2 as usize] as i64,
                        chain.get(v, v),
                        "v={v} l1={l1} l2={l2}"
                    );
                }
            }
        }
    }

    #[test]
    fn census_counts_sorted_triples() {
        // K4 colored 0,0,1,1: triangles are {0,1,2},{0,1,3},{0,2,3},{1,2,3}
        // → label triples 001, 001, 011, 011.
        let census = labeled_triangle_census(&two_colored_k4());
        assert_eq!(census[census_index(2, 0, 0, 1)], 2);
        assert_eq!(census[census_index(2, 0, 1, 1)], 2);
        assert_eq!(census[census_index(2, 0, 0, 0)], 0);
        assert_eq!(census[census_index(2, 1, 1, 1)], 0);
        assert_eq!(census.iter().sum::<u64>(), 4);
    }

    #[test]
    fn walks_respect_label_positions() {
        // K3 with labels 0,1,2: vertex 0 sees walks (1,2) and (2,1) once
        // each, nothing else.
        let lg = LabeledGraph::new(clique(3), vec![0, 1, 2], 3);
        let walks = labeled_triangle_walks(&lg);
        assert_eq!(walks[0][3 + 2], 1);
        assert_eq!(walks[0][2 * 3 + 1], 1);
        assert_eq!(walks[0].iter().sum::<u64>(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        LabeledGraph::new(clique(2), vec![0, 5], 2);
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn rejects_wrong_length() {
        LabeledGraph::new(clique(3), vec![0, 1], 2);
    }
}
