//! Clustering coefficients (Def. 7).
//!
//! `η(i) = 2 t_i / (d_i (d_i − 1))` at vertices and
//! `ξ(i,j) = Δ_ij / (min(d_i, d_j) − 1)` at edges, where degrees and
//! triangle counts are taken on the **loop-free core** (Thm. 1/2 assume
//! loop-free factors). Vertices/edges whose denominator vanishes get a
//! coefficient of 0 by convention.

use kron_graph::{CsrGraph, VertexId};

use crate::triangles::{edge_triangles, vertex_triangles};

/// Loop-free degree of `v` (self loop excluded).
fn core_degree(g: &CsrGraph, v: VertexId) -> u64 {
    g.degree(v) - u64::from(g.has_self_loop(v))
}

/// Vertex clustering coefficients for all vertices.
pub fn vertex_clustering(g: &CsrGraph) -> Vec<f64> {
    let t = vertex_triangles(g).per_vertex;
    (0..g.n())
        .map(|v| {
            let d = core_degree(g, v);
            if d < 2 {
                0.0
            } else {
                2.0 * t[v as usize] as f64 / (d as f64 * (d - 1) as f64)
            }
        })
        .collect()
}

/// Edge clustering coefficients, as `((u, v), ξ_uv)` per canonical edge.
pub fn edge_clustering(g: &CsrGraph) -> Vec<((VertexId, VertexId), f64)> {
    let et = edge_triangles(g);
    et.iter()
        .map(|((u, v), delta)| {
            let dmin = core_degree(g, u).min(core_degree(g, v));
            let xi = if dmin < 2 { 0.0 } else { delta as f64 / (dmin - 1) as f64 };
            ((u, v), xi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, cycle, star};
    use kron_graph::{CsrGraph, EdgeList};

    #[test]
    fn clique_is_fully_clustered() {
        let eta = vertex_clustering(&clique(5));
        assert!(eta.iter().all(|&e| (e - 1.0).abs() < 1e-12));
        for (_, xi) in edge_clustering(&clique(5)) {
            assert!((xi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn triangle_free_is_zero() {
        for g in [cycle(6), star(5)] {
            assert!(vertex_clustering(&g).iter().all(|&e| e == 0.0));
            assert!(edge_clustering(&g).iter().all(|&(_, xi)| xi == 0.0));
        }
    }

    #[test]
    fn degenerate_degrees_zero_not_nan() {
        // A single edge: degrees 1, denominator would vanish.
        let g = CsrGraph::from_arcs(2, vec![(0, 1), (1, 0)]).unwrap();
        assert_eq!(vertex_clustering(&g), vec![0.0, 0.0]);
        assert_eq!(edge_clustering(&g)[0].1, 0.0);
    }

    #[test]
    fn paw_graph_partial_clustering() {
        // Triangle {0,1,2} plus pendant 3 attached to 0.
        let mut list = EdgeList::new(4);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 3)] {
            list.add_undirected(u, v).unwrap();
        }
        let g = CsrGraph::from_edge_list(&list);
        let eta = vertex_clustering(&g);
        assert!((eta[0] - 2.0 / 6.0).abs() < 1e-12); // d=3, t=1
        assert!((eta[1] - 1.0).abs() < 1e-12);
        assert!((eta[3] - 0.0).abs() < 1e-12);
        let xi = edge_clustering(&g);
        let get = |u, v| {
            xi.iter()
                .find(|&&((a, b), _)| (a, b) == (u, v))
                .map(|&(_, x)| x)
                .unwrap()
        };
        assert!((get(1, 2) - 1.0).abs() < 1e-12); // Δ=1, min(d)=2
        assert!((get(0, 3) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_do_not_change_clustering() {
        let g = clique(4);
        let looped = g.with_full_self_loops();
        assert_eq!(vertex_clustering(&g), vertex_clustering(&looped));
        assert_eq!(edge_clustering(&g), edge_clustering(&looped));
    }
}
