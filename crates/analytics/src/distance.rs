//! Hop counts, eccentricity, diameter, and closeness centrality (§V).
//!
//! The paper's Def. 9 measures distance as
//! `hops(i, j) = min { h ≥ 1 : (A^h)_ij > 0 }` — note the minimum walk
//! length starts at 1, so the "distance" from a vertex to itself is 1 when
//! it has a self loop (and 2 via any neighbor otherwise). For `i ≠ j` this
//! coincides with the ordinary BFS shortest-path distance. All routines
//! here follow Def. 9 exactly so they can be compared verbatim against the
//! Kronecker formulas (Thm. 3–5, Cor. 3–5, Thm. 4).

use std::collections::VecDeque;

use kron_graph::{Arena, CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Sentinel for unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Standard BFS distances from `source` (`dist[source] = 0`,
/// [`UNREACHABLE`] for unreached vertices).
///
/// ```
/// use kron_analytics::distance::bfs_distances;
/// use kron_graph::generators::path;
///
/// assert_eq!(bfs_distances(&path(4), 0), vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.n() as usize;
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Def. 9 hop counts from `source`: BFS distance off the diagonal; at the
/// diagonal, 1 with a self loop, else 2 via any neighbor, else unreachable.
pub fn bfs_hops(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let mut hops = bfs_distances(g, source);
    hops[source as usize] = if g.has_self_loop(source) {
        1
    } else if g.degree(source) > 0 {
        2
    } else {
        UNREACHABLE
    };
    hops
}

/// Batched multi-source BFS distances over `u64` frontier bitsets: row
/// `i` equals `bfs_distances(g, sources[i])` bit-for-bit, but up to 64
/// sources advance per sweep.
///
/// The state is one word per vertex and per 64-source group — bit `s` of
/// `frontier[v]` means "source `s` reached `v` this level". Each level
/// pushes every active vertex's word into its out-neighbors
/// (`next[w] |= frontier[v]`), masks off vertices each source has already
/// visited, and stamps the level into the distance rows of the newly set
/// bits. Levels are synchronous, so the distances are the canonical BFS
/// distances regardless of push order; the word-parallel sweep touches
/// each adjacency list once per *level*, not once per *source* — the win
/// that makes factor-wide oracle construction cheap. Frontier/visited
/// words are recycled through the process [`Arena`].
pub fn multi_source_bfs_distances(g: &CsrGraph, sources: &[VertexId]) -> Vec<Vec<u32>> {
    let _span = kron_obs::span::enter("analytics/multi_source_bfs");
    let n = g.n() as usize;
    let mut rows: Vec<Vec<u32>> = sources.iter().map(|_| vec![UNREACHABLE; n]).collect();
    let arena = Arena::global();
    let mut sweeps = 0u64;
    let mut word_pushes = 0u64;
    for (chunk_at, chunk) in sources.chunks(64).enumerate() {
        let rows = &mut rows[chunk_at * 64..];
        let mut visited = arena.take_words(n);
        let mut frontier = arena.take_words(n);
        let mut next = arena.take_words(n);
        for (s, &src) in chunk.iter().enumerate() {
            frontier[src as usize] |= 1u64 << s;
            visited[src as usize] |= 1u64 << s;
            rows[s][src as usize] = 0;
        }
        let mut depth = 0u32;
        let mut active = true;
        while active {
            sweeps += 1;
            depth += 1;
            active = false;
            for v in 0..n {
                let f = frontier[v];
                if f == 0 {
                    continue;
                }
                word_pushes += g.neighbors(v as VertexId).len() as u64;
                for &w in g.neighbors(v as VertexId) {
                    next[w as usize] |= f;
                }
            }
            for v in 0..n {
                let fresh = next[v] & !visited[v];
                next[v] = 0;
                frontier[v] = fresh;
                if fresh != 0 {
                    active = true;
                    visited[v] |= fresh;
                    let mut y = fresh;
                    while y != 0 {
                        rows[y.trailing_zeros() as usize][v] = depth;
                        y &= y - 1;
                    }
                }
            }
        }
    }
    kron_obs::counter!("bfs.bitset_sweeps").add(sweeps);
    kron_obs::counter!("bfs.bitset_word_pushes").add(word_pushes);
    rows
}

/// Batched Def. 9 hop rows: row `i` equals `bfs_hops(g, sources[i])`
/// bit-for-bit (the diagonal conventions applied on top of
/// [`multi_source_bfs_distances`]).
pub fn multi_source_bfs_hops(g: &CsrGraph, sources: &[VertexId]) -> Vec<Vec<u32>> {
    let mut rows = multi_source_bfs_distances(g, sources);
    for (row, &src) in rows.iter_mut().zip(sources) {
        row[src as usize] = if g.has_self_loop(src) {
            1
        } else if g.degree(src) > 0 {
            2
        } else {
            UNREACHABLE
        };
    }
    rows
}

/// Full Def. 9 hop-count matrix (row `i` = `hops(i, ·)`). Quadratic memory;
/// only for factor-sized graphs.
pub fn hops_matrix(g: &CsrGraph) -> Vec<Vec<u32>> {
    (0..g.n()).map(|v| bfs_hops(g, v)).collect()
}

/// Eccentricity of one vertex (Def. 11): `max_j hops(i, j)`;
/// [`UNREACHABLE`] when some vertex cannot be reached.
pub fn eccentricity(g: &CsrGraph, v: VertexId) -> u32 {
    bfs_hops(g, v).into_iter().max().unwrap_or(UNREACHABLE)
}

/// Eccentricities of every vertex by running a BFS from each (`O(n·m)`).
pub fn all_eccentricities_naive(g: &CsrGraph) -> Vec<u32> {
    (0..g.n()).map(|v| eccentricity(g, v)).collect()
}

/// Exact eccentricities of every vertex of a **connected undirected** graph
/// using the bounds-refinement algorithm of Takes & Kosters (the approach
/// behind the paper's reference [3] for massive-scale exact eccentricity).
///
/// Maintains per-vertex lower/upper eccentricity bounds; each pivot BFS
/// tightens `lower(u) ≥ max(d(u), ecc(pivot) − d(u))` and
/// `upper(u) ≤ ecc(pivot) + d(u)`, resolving most vertices of small-world
/// graphs within a handful of sweeps. Falls back to per-vertex BFS for any
/// stragglers, so the result is always exact.
///
/// Panics if the graph is disconnected (bounds would never close) — extract
/// the largest connected component first, as the paper does.
pub fn all_eccentricities(g: &CsrGraph) -> Vec<u32> {
    let n = g.n() as usize;
    if n == 0 {
        return vec![];
    }
    let mut lower = vec![0u32; n];
    let mut upper = vec![u32::MAX; n];
    let mut resolved = vec![false; n];
    let mut remaining = n;
    let mut pick_max_upper = true;

    while remaining > 0 {
        // Pivot selection: alternate the vertex with the largest upper bound
        // and the one with the smallest lower bound among unresolved
        // vertices (the classic interchanging strategy).
        let pivot = if pick_max_upper {
            (0..n)
                .filter(|&v| !resolved[v])
                .max_by_key(|&v| (upper[v], g.degree(v as u64)))
                .expect("remaining > 0")
        } else {
            (0..n)
                .filter(|&v| !resolved[v])
                .min_by_key(|&v| (lower[v], std::cmp::Reverse(g.degree(v as u64))))
                .expect("remaining > 0")
        };
        pick_max_upper = !pick_max_upper;

        let hops = bfs_hops(g, pivot as u64);
        let ecc_pivot = hops.iter().copied().max().unwrap_or(UNREACHABLE);
        assert!(
            ecc_pivot != UNREACHABLE,
            "all_eccentricities requires a connected graph"
        );
        for u in 0..n {
            if resolved[u] {
                continue;
            }
            let d = hops[u];
            let lo = d.max(ecc_pivot.saturating_sub(d));
            let hi = ecc_pivot.saturating_add(d);
            if lo > lower[u] {
                lower[u] = lo;
            }
            if hi < upper[u] {
                upper[u] = hi;
            }
            if lower[u] == upper[u] {
                resolved[u] = true;
                remaining -= 1;
            }
        }
        // Resolve the pivot itself exactly.
        if !resolved[pivot] {
            lower[pivot] = ecc_pivot;
            upper[pivot] = ecc_pivot;
            resolved[pivot] = true;
            remaining -= 1;
        }
    }
    lower
}

/// Graph diameter (Def. 10): the maximum hop count over all vertex pairs;
/// [`UNREACHABLE`] when disconnected, 0 when empty.
pub fn diameter(g: &CsrGraph) -> u32 {
    if g.n() == 0 {
        return 0;
    }
    // diameter = max eccentricity; two-phase: naive for tiny graphs,
    // bounds-based otherwise would need connectivity — keep naive max here
    // since diameter() is used on factor-scale graphs.
    all_eccentricities_naive(g).into_iter().max().unwrap_or(0)
}

/// Closeness centrality of one vertex (Def. 12):
/// `ζ(i) = Σ_j 1 / hops(i, j)`, summing only reachable `j`.
pub fn closeness(g: &CsrGraph, v: VertexId) -> f64 {
    bfs_hops(g, v)
        .into_iter()
        .filter(|&h| h != UNREACHABLE)
        .map(|h| 1.0 / h as f64)
        .sum()
}

/// Per-vertex eccentricity bounds from `k` pivot BFS passes — the cheap
/// approximation regime the paper's Fig. 1 notes ("30% of vertices may be
/// estimating a value 1 greater than actual eccentricity").
///
/// Each pivot `c` with exact `ε(c)` tightens, for every `v`:
/// `lower(v) ≥ max(d(c,v), ε(c) − d(c,v))` and `upper(v) ≤ d(c,v) + ε(c)`.
/// Pivots are chosen as the highest-degree vertex plus a deterministic
/// spread. Cost: `O(k (n + m))` vs the exact algorithm's data-dependent
/// sweep count.
pub fn eccentricity_bounds_via_pivots(g: &CsrGraph, pivots: usize) -> Vec<(u32, u32)> {
    let n = g.n() as usize;
    if n == 0 {
        return vec![];
    }
    let mut bounds = vec![(0u32, u32::MAX); n];
    // Pivot 1: max degree; the rest: deterministic stride over V.
    let mut picks: Vec<VertexId> =
        vec![(0..g.n()).max_by_key(|&v| g.degree(v)).expect("n > 0")];
    let stride = (g.n() / pivots.max(1) as u64).max(1);
    let mut v = 0;
    while picks.len() < pivots && v < g.n() {
        if !picks.contains(&v) {
            picks.push(v);
        }
        v += stride;
    }
    for c in picks {
        let hops = bfs_hops(g, c);
        let ecc_c = hops.iter().copied().max().unwrap_or(UNREACHABLE);
        if ecc_c == UNREACHABLE {
            continue; // disconnected: bounds stay open
        }
        for (u, &d) in hops.iter().enumerate() {
            let (lo, hi) = &mut bounds[u];
            *lo = (*lo).max(d.max(ecc_c.saturating_sub(d)));
            *hi = (*hi).min(ecc_c.saturating_add(d));
        }
    }
    bounds
}

/// Summary of a graph's distance structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceSummary {
    /// Per-vertex eccentricity.
    pub eccentricities: Vec<u32>,
    /// Graph diameter (max eccentricity).
    pub diameter: u32,
    /// Graph radius (min eccentricity).
    pub radius: u32,
}

/// Computes the distance summary of a connected graph exactly.
pub fn distance_summary(g: &CsrGraph) -> DistanceSummary {
    let eccentricities = all_eccentricities(g);
    let diameter = eccentricities.iter().copied().max().unwrap_or(0);
    let radius = eccentricities.iter().copied().min().unwrap_or(0);
    DistanceSummary { eccentricities, diameter, radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, cycle, path, star};
    use kron_graph::CsrGraph;

    #[test]
    fn bfs_distances_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = CsrGraph::from_arcs(3, vec![(0, 1), (1, 0)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
    }

    #[test]
    fn hops_diagonal_conventions() {
        // No self loop, has neighbors → hops(i,i) = 2.
        let g = path(3);
        assert_eq!(bfs_hops(&g, 1)[1], 2);
        // Self loop → 1.
        let with_loop = g.with_full_self_loops();
        assert_eq!(bfs_hops(&with_loop, 1)[1], 1);
        // Isolated vertex → unreachable.
        let iso = CsrGraph::from_arcs(2, vec![]).unwrap();
        assert_eq!(bfs_hops(&iso, 0)[0], UNREACHABLE);
    }

    #[test]
    fn hops_off_diagonal_matches_bfs() {
        let g = cycle(6).with_full_self_loops();
        let hops = bfs_hops(&g, 0);
        assert_eq!(hops[3], 3);
        assert_eq!(hops[5], 1);
        assert_eq!(hops[0], 1);
    }

    #[test]
    fn eccentricity_known_families() {
        let g = path(5).with_full_self_loops();
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        let k = clique(4).with_full_self_loops();
        assert_eq!(eccentricity(&k, 0), 1);
        // Clique without loops: hops(i,i)=2 dominates the 1-hop neighbors.
        let k_plain = clique(4);
        assert_eq!(eccentricity(&k_plain, 0), 2);
    }

    #[test]
    fn diameter_known_families() {
        assert_eq!(diameter(&path(6).with_full_self_loops()), 5);
        assert_eq!(diameter(&cycle(8).with_full_self_loops()), 4);
        assert_eq!(diameter(&clique(5).with_full_self_loops()), 1);
        assert_eq!(diameter(&star(5).with_full_self_loops()), 2);
    }

    #[test]
    fn bounded_matches_naive_on_families() {
        for g in [
            path(9).with_full_self_loops(),
            cycle(10).with_full_self_loops(),
            star(12).with_full_self_loops(),
            clique(6).with_full_self_loops(),
            path(9),
            cycle(10),
            star(12),
        ] {
            assert_eq!(all_eccentricities(&g), all_eccentricities_naive(&g));
        }
    }

    #[test]
    fn bounded_matches_naive_on_random() {
        use kron_graph::generators::barabasi_albert;
        let g = barabasi_albert(200, 2, 9).with_full_self_loops();
        assert_eq!(all_eccentricities(&g), all_eccentricities_naive(&g));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn bounded_rejects_disconnected() {
        let g = CsrGraph::from_arcs(4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        all_eccentricities(&g);
    }

    #[test]
    fn closeness_star_center_vs_leaf() {
        let g = star(5).with_full_self_loops();
        // Center: self 1 + four leaves at 1 → 5.
        assert!((closeness(&g, 0) - 5.0).abs() < 1e-12);
        // Leaf: self 1 + center 1 + three leaves at 2 → 3.5.
        assert!((closeness(&g, 1) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn closeness_skips_unreachable() {
        let g = CsrGraph::from_arcs(3, vec![(0, 1), (1, 0), (0, 0), (1, 1), (2, 2)]).unwrap();
        assert!((closeness(&g, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_consistency() {
        let g = cycle(7).with_full_self_loops();
        let s = distance_summary(&g);
        assert_eq!(s.diameter, 3);
        assert_eq!(s.radius, 3);
        assert_eq!(s.eccentricities.len(), 7);
    }

    #[test]
    fn pivot_bounds_contain_exact_eccentricities() {
        use kron_graph::generators::barabasi_albert;
        let g = barabasi_albert(120, 2, 5).with_full_self_loops();
        let exact = all_eccentricities(&g);
        for pivots in [1usize, 4, 16] {
            let bounds = eccentricity_bounds_via_pivots(&g, pivots);
            for (v, &(lo, hi)) in bounds.iter().enumerate() {
                assert!(
                    lo <= exact[v] && exact[v] <= hi,
                    "pivots={pivots} v={v}: {} not in [{lo}, {hi}]",
                    exact[v]
                );
            }
        }
        // More pivots resolve most small-world vertices within +1 — the
        // paper's Fig. 1 error regime.
        let bounds = eccentricity_bounds_via_pivots(&g, 16);
        let near = bounds
            .iter()
            .zip(&exact)
            .filter(|(&(lo, hi), _)| hi - lo <= 1)
            .count();
        assert!(
            near * 10 >= 7 * bounds.len(),
            "only {near}/{} vertices within +1",
            bounds.len()
        );
    }

    #[test]
    fn pivot_bounds_edge_cases() {
        let empty = CsrGraph::from_arcs(0, vec![]).unwrap();
        assert!(eccentricity_bounds_via_pivots(&empty, 4).is_empty());
        let disconnected = CsrGraph::from_arcs(3, vec![(0, 1), (1, 0)]).unwrap();
        let bounds = eccentricity_bounds_via_pivots(&disconnected, 2);
        assert_eq!(bounds.len(), 3);
    }

    #[test]
    fn multi_source_matches_scalar_bfs() {
        use kron_graph::generators::{barabasi_albert, erdos_renyi};
        for g in [
            path(7),
            cycle(9).with_full_self_loops(),
            star(6),
            clique(5).with_full_self_loops(),
            erdos_renyi(40, 0.1, 3),
            barabasi_albert(70, 2, 4),
            CsrGraph::from_arcs(3, vec![(0, 1), (1, 0)]).unwrap(),
            CsrGraph::from_arcs(5, vec![(0, 1), (1, 2), (3, 4)]).unwrap(), // directed
        ] {
            let sources: Vec<VertexId> = (0..g.n()).collect();
            let dist_rows = multi_source_bfs_distances(&g, &sources);
            let hop_rows = multi_source_bfs_hops(&g, &sources);
            for (i, &src) in sources.iter().enumerate() {
                assert_eq!(dist_rows[i], bfs_distances(&g, src), "distances from {src}");
                assert_eq!(hop_rows[i], bfs_hops(&g, src), "hops from {src}");
            }
        }
    }

    #[test]
    fn multi_source_crosses_word_boundaries() {
        // > 64 sources forces multiple word groups; duplicates are legal.
        let g = cycle(70).with_full_self_loops();
        let sources: Vec<VertexId> = (0..70).chain([0, 0, 13]).collect();
        let rows = multi_source_bfs_hops(&g, &sources);
        assert_eq!(rows.len(), 73);
        for (i, &src) in sources.iter().enumerate() {
            assert_eq!(rows[i], bfs_hops(&g, src));
        }
    }

    #[test]
    fn multi_source_empty_and_single() {
        let g = path(4);
        assert!(multi_source_bfs_distances(&g, &[]).is_empty());
        assert_eq!(multi_source_bfs_distances(&g, &[2]), vec![bfs_distances(&g, 2)]);
    }

    #[test]
    fn hops_matrix_is_symmetric_for_undirected() {
        let g = cycle(6).with_full_self_loops();
        let m = hops_matrix(&g);
        for (i, row) in m.iter().enumerate() {
            for (j, &h) in row.iter().enumerate() {
                assert_eq!(h, m[j][i]);
            }
        }
    }
}
