//! Betweenness centrality (Brandes' algorithm, the paper's ref. [24]).
//!
//! §V motivates the distance-based centrality family as "eccentricity,
//! closeness centrality, and betweenness centrality". The paper derives
//! Kronecker formulas for the first two only — betweenness depends on
//! shortest-path *counts*, which do not factor across `⊗` (shortest paths
//! in `C` synchronize steps in both factors, so path multiplicities mix).
//! This module provides the exact `O(nm)` reference implementation so
//! that (a) the library covers the full centrality family the paper
//! motivates and (b) the non-factorization is demonstrated by test rather
//! than asserted.

use std::collections::VecDeque;

use kron_graph::{CsrGraph, VertexId};

/// Exact betweenness centrality of every vertex of an unweighted graph
/// (Brandes 2001). Each unordered pair is counted once (the undirected
/// convention: accumulated dependencies are halved).
pub fn betweenness(g: &CsrGraph) -> Vec<f64> {
    let n = g.n() as usize;
    let mut centrality = vec![0.0f64; n];
    // Reused per-source state.
    let mut stack: Vec<VertexId> = Vec::with_capacity(n);
    let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i64; n];
    let mut delta = vec![0.0f64; n];
    let mut queue = VecDeque::new();

    for s in 0..n as u64 {
        stack.clear();
        for p in preds.iter_mut() {
            p.clear();
        }
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);

        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            let dv = dist[v as usize];
            for &w in g.neighbors(v) {
                if w == v {
                    continue; // self loops carry no shortest paths
                }
                if dist[w as usize] < 0 {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dv + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        // Dependency accumulation in reverse BFS order.
        while let Some(w) = stack.pop() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize];
            let parents = std::mem::take(&mut preds[w as usize]);
            for &v in &parents {
                delta[v as usize] += sigma[v as usize] * coeff;
            }
            preds[w as usize] = parents;
            if w != s {
                centrality[w as usize] += delta[w as usize];
            }
        }
    }
    // Undirected: each pair (s, t) was visited from both endpoints.
    for c in centrality.iter_mut() {
        *c /= 2.0;
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use kron_graph::generators::{clique, cycle, path, star};
    use kron_graph::EdgeList;

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (idx, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "index {idx}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_known_values() {
        // P5 (0-1-2-3-4): interior vertex v at position i carries
        // i·(n−1−i) pairs.
        let bc = betweenness(&path(5));
        close(&bc, &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_carries_all_pairs() {
        // S_n: center on all C(n−1, 2) leaf pairs; leaves on none.
        let bc = betweenness(&star(6));
        close(&bc, &[10.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn clique_has_no_intermediaries() {
        let bc = betweenness(&clique(5));
        close(&bc, &[0.0; 5]);
    }

    #[test]
    fn cycle_symmetric() {
        // C6: every vertex lies on the unique shortest paths between the
        // two vertex pairs that straddle it plus half of the diametral
        // pairs; symmetry means all values equal.
        let bc = betweenness(&cycle(6));
        assert!(bc.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
        // Per vertex: 1 from its unique distance-2 pair plus ½ + ½ from
        // the two diametral pairs whose split shortest paths cross it.
        close(&bc, &[2.0; 6]);
    }

    #[test]
    fn multiple_shortest_paths_split_credit() {
        // C4 (0-1-2-3-0): pairs at distance 2 have two shortest paths;
        // each intermediate gets ½ per such pair → 0.5 each.
        let bc = betweenness(&cycle(4));
        close(&bc, &[0.5; 4]);
    }

    #[test]
    fn self_loops_ignored() {
        let g = path(4);
        let looped = g.with_full_self_loops();
        close(&betweenness(&g), &betweenness(&looped));
    }

    #[test]
    fn disconnected_components_independent() {
        // Two disjoint paths: values as in each path alone.
        let mut list = EdgeList::new(6);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            list.add_undirected(u, v).unwrap();
        }
        let g = kron_graph::CsrGraph::from_edge_list(&list);
        let bc = betweenness(&g);
        close(&bc, &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    /// The negative result the paper implies by omission: betweenness of
    /// the Kronecker product is NOT a simple product/max of factor
    /// betweennesses, because shortest-path counts do not factor.
    #[test]
    fn betweenness_does_not_factor_across_kronecker() {
        let a = path(3).with_full_self_loops();
        let b = path(3).with_full_self_loops();
        // Materialize C = A ⊗ B by hand (both factors 3 vertices).
        let mut list = EdgeList::new(9);
        for u in 0..3u64 {
            for v in 0..3u64 {
                for x in 0..3u64 {
                    for y in 0..3u64 {
                        if a.has_arc(u, v) && b.has_arc(x, y) {
                            list.add_arc(u * 3 + x, v * 3 + y).unwrap();
                        }
                    }
                }
            }
        }
        let c = kron_graph::CsrGraph::from_edge_list(&list);
        let bc_c = betweenness(&c);
        let bc_a = betweenness(&a);
        let bc_b = betweenness(&b);
        // Candidate "laws": product, max — both must fail somewhere.
        let mut product_fails = false;
        let mut max_fails = false;
        for i in 0..3usize {
            for k in 0..3usize {
                let actual = bc_c[i * 3 + k];
                if (actual - bc_a[i] * bc_b[k]).abs() > 1e-9 {
                    product_fails = true;
                }
                if (actual - bc_a[i].max(bc_b[k])).abs() > 1e-9 {
                    max_fails = true;
                }
            }
        }
        assert!(product_fails, "a product law unexpectedly held");
        assert!(max_fails, "a max law unexpectedly held");
    }
}
