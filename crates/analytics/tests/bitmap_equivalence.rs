//! Equivalence suite for the PR 6 bitmap kernel tier.
//!
//! Every kernel tier is an *optimization*, never a semantic change: the
//! word-parallel bitmap triangle kernel must produce bit-identical
//! counts to the marking kernel (and both to the enumeration oracle),
//! and the multi-source bitset BFS must reproduce the scalar BFS rows
//! element for element. This suite pins that across random graphs, the
//! deterministic generator zoo the chaos suite draws from, both
//! self-loop modes, and thread counts {1, 2, 3, 8} (oversubscribing the
//! host is deliberate).

use proptest::prelude::*;

use kron_analytics::distance::{
    bfs_distances, bfs_hops, multi_source_bfs_distances, multi_source_bfs_hops,
};
use kron_analytics::triangles::{
    enumerate_triangles, global_triangles_threads_with, global_triangles_with,
    vertex_triangles_threads_with, vertex_triangles_with, TriangleCounts, TriangleKernel,
};
use kron_graph::generators::{barabasi_albert, clique, cycle, erdos_renyi, path, rmat, star, RmatConfig};
use kron_graph::{CsrGraph, EdgeList, VertexId};

const THREADS: [usize; 4] = [1, 2, 3, 8];
const KERNELS: [TriangleKernel; 3] =
    [TriangleKernel::Auto, TriangleKernel::Marking, TriangleKernel::Bitmap];

/// Builds an undirected loop-free graph from a raw arc bag.
fn undirected(n: u64, raw: Vec<(u64, u64)>) -> CsrGraph {
    let mut list = EdgeList::from_arcs(n, raw).expect("arcs in range by strategy");
    list.symmetrize();
    list.remove_self_loops();
    CsrGraph::from_edge_list(&list)
}

fn raw_arcs(n: u64, max_arcs: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_arcs)
}

/// Reference triangle counts via the order-pinned enumeration kernel.
fn enumerated(g: &CsrGraph) -> TriangleCounts {
    let mut per_vertex = vec![0u64; g.n() as usize];
    let mut global = 0u64;
    enumerate_triangles(g, |u, v, w| {
        per_vertex[u as usize] += 1;
        per_vertex[v as usize] += 1;
        per_vertex[w as usize] += 1;
        global += 1;
    });
    TriangleCounts { per_vertex, global }
}

/// Asserts all three kernel tiers, sequential and threaded, agree with
/// the enumeration reference exactly.
fn assert_triangle_tiers_agree(g: &CsrGraph, label: &str) {
    let reference = enumerated(g);
    for kernel in KERNELS {
        let counts = vertex_triangles_with(g, kernel);
        assert_eq!(counts, reference, "{label}: {kernel:?} sequential");
        assert_eq!(
            global_triangles_with(g, kernel),
            reference.global,
            "{label}: {kernel:?} global"
        );
        for t in THREADS {
            assert_eq!(
                vertex_triangles_threads_with(g, Some(t), kernel),
                reference,
                "{label}: {kernel:?} threads={t}"
            );
            assert_eq!(
                global_triangles_threads_with(g, Some(t), kernel),
                reference.global,
                "{label}: {kernel:?} global threads={t}"
            );
        }
    }
}

/// Asserts the bitset BFS reproduces every scalar BFS row exactly.
fn assert_bfs_rows_agree(g: &CsrGraph, label: &str) {
    let sources: Vec<VertexId> = (0..g.n()).collect();
    let dist_rows = multi_source_bfs_distances(g, &sources);
    let hop_rows = multi_source_bfs_hops(g, &sources);
    for (i, &src) in sources.iter().enumerate() {
        assert_eq!(dist_rows[i], bfs_distances(g, src), "{label}: distances from {src}");
        assert_eq!(hop_rows[i], bfs_hops(g, src), "{label}: hops from {src}");
    }
}

/// The deterministic generator zoo (the families the chaos suite draws
/// its factors from, plus skewed R-MAT), in both self-loop modes.
fn zoo() -> Vec<(String, CsrGraph)> {
    let mut out = Vec::new();
    let base: Vec<(&str, CsrGraph)> = vec![
        ("path(9)", path(9)),
        ("cycle(8)", cycle(8)),
        ("star(9)", star(9)),
        ("clique(7)", clique(7)),
        ("erdos_renyi(24,0.2)", erdos_renyi(24, 0.2, 77)),
        ("erdos_renyi(40,0.5)", erdos_renyi(40, 0.5, 5)),
        ("barabasi_albert(60,3)", barabasi_albert(60, 3, 9)),
        ("rmat(scale 6)", rmat(&RmatConfig::graph500(6, 12))),
        ("empty(5)", CsrGraph::from_arcs(5, vec![]).unwrap()),
    ];
    for (name, g) in base {
        out.push((format!("{name} loop-free"), g.clone()));
        out.push((format!("{name} full loops"), g.with_full_self_loops()));
    }
    out
}

#[test]
fn triangle_tiers_agree_on_zoo() {
    for (label, g) in zoo() {
        assert_triangle_tiers_agree(&g, &label);
    }
}

#[test]
fn bitset_bfs_agrees_on_zoo() {
    for (label, g) in zoo() {
        assert_bfs_rows_agree(&g, &label);
    }
}

#[test]
fn bitset_bfs_agrees_on_directed_graphs() {
    // The bitset BFS pushes along out-arcs, exactly like the scalar BFS;
    // directed inputs (which the triangle kernels never see) must agree
    // too — the distance oracle relies on this for directed factors.
    let dag = CsrGraph::from_arcs(6, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
    let dir_cycle =
        CsrGraph::from_arcs(5, (0..5).map(|v| (v, (v + 1) % 5)).collect::<Vec<_>>()).unwrap();
    assert_bfs_rows_agree(&dag, "dag");
    assert_bfs_rows_agree(&dir_cycle, "directed cycle");
    assert_bfs_rows_agree(&dir_cycle.with_full_self_loops(), "directed cycle + loops");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All triangle kernel tiers agree with enumeration on random
    /// undirected graphs, with and without full self loops.
    #[test]
    fn triangle_tiers_agree_on_random(raw in raw_arcs(18, 120)) {
        let g = undirected(18, raw);
        assert_triangle_tiers_agree(&g, "random");
        assert_triangle_tiers_agree(&g.with_full_self_loops(), "random + loops");
    }

    /// The bitset BFS agrees with scalar BFS on random graphs — raw
    /// (possibly directed, possibly self-looped) and symmetrized.
    #[test]
    fn bitset_bfs_agrees_on_random(raw in raw_arcs(30, 150)) {
        let raw_graph = CsrGraph::from_arcs(30, raw.clone()).unwrap();
        assert_bfs_rows_agree(&raw_graph, "raw directed");
        let sym = undirected(30, raw);
        assert_bfs_rows_agree(&sym, "symmetrized");
        assert_bfs_rows_agree(&sym.with_full_self_loops(), "symmetrized + loops");
    }
}
