//! Property tests for the reference analytics, cross-checked against
//! independent brute-force oracles implemented inside this test file.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use kron_analytics::{betweenness, clustering, distance, triangles};
use kron_graph::{CsrGraph, EdgeList};

/// Strategy: random undirected loop-free graph on `n` vertices.
fn graph(n: u64) -> impl Strategy<Value = CsrGraph> {
    let pairs: Vec<(u64, u64)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
        let mut list = EdgeList::new(n);
        for (keep, &(u, v)) in mask.iter().zip(&pairs) {
            if *keep {
                list.add_undirected(u, v).expect("in range");
            }
        }
        CsrGraph::from_edge_list(&list)
    })
}

/// Brute force: O(n³) triple scan for triangles.
fn brute_force_triangles(g: &CsrGraph) -> (Vec<u64>, u64) {
    let n = g.n();
    let mut per_vertex = vec![0u64; n as usize];
    let mut total = 0u64;
    for u in 0..n {
        for v in (u + 1)..n {
            for w in (v + 1)..n {
                if g.has_arc(u, v) && g.has_arc(v, w) && g.has_arc(u, w) {
                    per_vertex[u as usize] += 1;
                    per_vertex[v as usize] += 1;
                    per_vertex[w as usize] += 1;
                    total += 1;
                }
            }
        }
    }
    (per_vertex, total)
}

/// Brute force: Floyd–Warshall all-pairs shortest paths.
fn floyd_warshall(g: &CsrGraph) -> Vec<Vec<u32>> {
    const INF: u32 = u32::MAX / 4;
    let n = g.n() as usize;
    let mut d = vec![vec![INF; n]; n];
    for i in 0..n {
        d[i][i] = 0;
    }
    for (u, v) in g.arcs() {
        if u != v {
            d[u as usize][v as usize] = 1;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let through = d[i][k].saturating_add(d[k][j]);
                if through < d[i][j] {
                    d[i][j] = through;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast triangle counting equals the O(n³) scan.
    #[test]
    fn triangles_match_brute_force(g in graph(9)) {
        let fast = triangles::vertex_triangles(&g);
        let (per_vertex, total) = brute_force_triangles(&g);
        prop_assert_eq!(fast.per_vertex, per_vertex);
        prop_assert_eq!(fast.global, total);
        prop_assert_eq!(triangles::global_triangles(&g), total);
    }

    /// Edge triangle counts: Δ_uv = common neighbors, brute force.
    #[test]
    fn edge_triangles_match_brute_force(g in graph(9)) {
        let et = triangles::edge_triangles(&g);
        for ((u, v), count) in et.iter() {
            let brute = (0..9u64)
                .filter(|&w| w != u && w != v && g.has_arc(u, w) && g.has_arc(v, w))
                .count() as u64;
            prop_assert_eq!(count, brute, "edge ({},{})", u, v);
        }
    }

    /// BFS distances equal Floyd–Warshall distances.
    #[test]
    fn bfs_matches_floyd_warshall(g in graph(10)) {
        let fw = floyd_warshall(&g);
        for s in 0..10u64 {
            let bfs = distance::bfs_distances(&g, s);
            for t in 0..10usize {
                let expected = fw[s as usize][t];
                if expected >= u32::MAX / 4 {
                    prop_assert_eq!(bfs[t], distance::UNREACHABLE);
                } else {
                    prop_assert_eq!(bfs[t], expected, "({}, {})", s, t);
                }
            }
        }
    }

    /// Takes–Kosters eccentricities equal naive all-BFS on connected
    /// graphs.
    #[test]
    fn bounded_eccentricity_exact(g in graph(10)) {
        prop_assume!(kron_graph::connectivity::is_connected(&g) && g.n() > 0 && g.nnz() > 0);
        prop_assert_eq!(
            distance::all_eccentricities(&g),
            distance::all_eccentricities_naive(&g)
        );
    }

    /// Clustering coefficients stay in [0, 1] and hit 0/1 where expected.
    #[test]
    fn clustering_range(g in graph(9)) {
        for (v, &eta) in clustering::vertex_clustering(&g).iter().enumerate() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&eta), "vertex {}: {}", v, eta);
        }
        for ((u, v), xi) in clustering::edge_clustering(&g) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&xi), "edge ({u},{v}): {xi}");
        }
    }

    /// Betweenness: nonnegative; total over vertices equals Σ over pairs
    /// of (internal path length), bounded by pairs × (n−2).
    #[test]
    fn betweenness_sane(g in graph(9)) {
        let bc = betweenness::betweenness(&g);
        let total: f64 = bc.iter().sum();
        prop_assert!(bc.iter().all(|&x| x >= -1e-12));
        let n = 9.0f64;
        let max_total = n * (n - 1.0) / 2.0 * (n - 2.0);
        prop_assert!(total <= max_total + 1e-9);
        // Pair-sum identity: Σ_v bc(v) = Σ_{s<t, connected} (d(s,t) − 1).
        let fw = floyd_warshall(&g);
        let mut expected = 0.0;
        for s in 0..9usize {
            for t in (s + 1)..9 {
                let d = fw[s][t];
                if d > 0 && d < u32::MAX / 4 {
                    expected += (d - 1) as f64;
                }
            }
        }
        prop_assert!((total - expected).abs() < 1e-9, "{} vs {}", total, expected);
    }

    /// Community profile quadratic-form identity.
    #[test]
    fn community_counts_consistent(
        g in graph(10),
        mask in proptest::collection::vec(proptest::bool::ANY, 10),
    ) {
        use kron_analytics::community::community_profile;
        let members: Vec<u64> = (0..10u64).filter(|&v| mask[v as usize]).collect();
        let p = community_profile(&g, &members);
        // m_in + m_out + edges-outside = total edges.
        let outside: Vec<u64> = (0..10u64).filter(|&v| !mask[v as usize]).collect();
        let p_out = community_profile(&g, &outside);
        prop_assert_eq!(
            p.m_in + p.m_out + p_out.m_in,
            g.undirected_edge_count()
        );
        // Complement symmetry: m_out(S) = m_out(V∖S).
        prop_assert_eq!(p.m_out, p_out.m_out);
    }
}
