//! Block-index maps of §II-A.
//!
//! The paper works 1-based: for block size `n`,
//!
//! ```text
//! α_n(i) = ⌊(i−1)/n⌋ + 1        (block number)
//! β_n(i) = ((i−1) mod n) + 1    (intra-block index)
//! γ_n(x, y) = (x−1)·n + y       (inverse)
//! ```
//!
//! [`alpha`], [`beta`], [`gamma`] are the paper-faithful 1-based maps, used
//! in tests that mirror the text. The 0-based hot-path equivalents used
//! everywhere else are [`pair_of`] (`p → (p / n, p % n)`) and [`vertex_of`]
//! (`(i, k) → i·n + k`); [`BlockIndex`] bundles a block size for repeated
//! conversions.

/// Paper's 1-based block number `α_n(i) = ⌊(i−1)/n⌋ + 1`.
pub fn alpha(n: u64, i: u64) -> u64 {
    debug_assert!(n > 0 && i > 0, "1-based maps need n>0 and i>=1");
    (i - 1) / n + 1
}

/// Paper's 1-based intra-block index `β_n(i) = ((i−1) mod n) + 1`.
pub fn beta(n: u64, i: u64) -> u64 {
    debug_assert!(n > 0 && i > 0, "1-based maps need n>0 and i>=1");
    (i - 1) % n + 1
}

/// Paper's 1-based inverse `γ_n(x, y) = (x−1)·n + y`.
pub fn gamma(n: u64, x: u64, y: u64) -> u64 {
    debug_assert!(n > 0 && x > 0 && y > 0 && y <= n);
    (x - 1) * n + y
}

/// 0-based split: `p → (block, offset) = (p / n, p % n)`.
#[inline]
pub fn pair_of(n: u64, p: u64) -> (u64, u64) {
    debug_assert!(n > 0);
    (p / n, p % n)
}

/// 0-based join: `(block, offset) → block·n + offset`.
#[inline]
pub fn vertex_of(n: u64, block: u64, offset: u64) -> u64 {
    debug_assert!(offset < n);
    block * n + offset
}

/// A block size bundled with its conversion methods; `n_b` is the inner
/// (second-factor) dimension of a Kronecker product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockIndex {
    n_b: u64,
}

impl BlockIndex {
    /// Creates a block index with inner dimension `n_b > 0`.
    pub fn new(n_b: u64) -> Self {
        assert!(n_b > 0, "block size must be positive");
        BlockIndex { n_b }
    }

    /// Inner dimension.
    pub fn n_b(&self) -> u64 {
        self.n_b
    }

    /// Splits a product vertex `p` into `(i, k)` with `i ∈ V_A`, `k ∈ V_B`.
    #[inline]
    pub fn split(&self, p: u64) -> (u64, u64) {
        pair_of(self.n_b, p)
    }

    /// Joins factor vertices `(i, k)` into the product vertex.
    #[inline]
    pub fn join(&self, i: u64, k: u64) -> u64 {
        vertex_of(self.n_b, i, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_examples() {
        // Block size 3, global index 5 (1-based): block 2, offset 2.
        assert_eq!(alpha(3, 5), 2);
        assert_eq!(beta(3, 5), 2);
        assert_eq!(gamma(3, 2, 2), 5);
        // First element of first block.
        assert_eq!(alpha(4, 1), 1);
        assert_eq!(beta(4, 1), 1);
        // Last element of a block.
        assert_eq!(alpha(4, 4), 1);
        assert_eq!(beta(4, 4), 4);
        assert_eq!(alpha(4, 5), 2);
        assert_eq!(beta(4, 5), 1);
    }

    #[test]
    fn zero_based_equivalence() {
        // 1-based (α, β) and 0-based split agree after shifting.
        for n in 1..6u64 {
            for p0 in 0..30u64 {
                let p1 = p0 + 1;
                let (i0, k0) = pair_of(n, p0);
                assert_eq!(alpha(n, p1), i0 + 1);
                assert_eq!(beta(n, p1), k0 + 1);
                assert_eq!(gamma(n, i0 + 1, k0 + 1), vertex_of(n, i0, k0) + 1);
            }
        }
    }

    #[test]
    fn block_index_roundtrip_small() {
        let b = BlockIndex::new(7);
        for p in 0..50 {
            let (i, k) = b.split(p);
            assert_eq!(b.join(i, k), p);
            assert!(k < 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn block_index_rejects_zero() {
        BlockIndex::new(0);
    }

    proptest! {
        #[test]
        fn gamma_inverts_alpha_beta(n in 1u64..1000, i in 1u64..1_000_000) {
            prop_assert_eq!(gamma(n, alpha(n, i), beta(n, i)), i);
        }

        #[test]
        fn split_join_roundtrip(n in 1u64..1000, p in 0u64..1_000_000) {
            let b = BlockIndex::new(n);
            let (i, k) = b.split(p);
            prop_assert_eq!(b.join(i, k), p);
            prop_assert!(k < n);
        }

        #[test]
        fn join_split_roundtrip(n in 1u64..1000, i in 0u64..1000, k_raw in 0u64..1000) {
            let k = k_raw % n;
            let b = BlockIndex::new(n);
            prop_assert_eq!(b.split(b.join(i, k)), (i, k));
        }
    }
}
