//! # kron-linalg — Kronecker algebra oracle
//!
//! Small dense/sparse matrix algebra implementing §II of the paper exactly:
//! block-index maps (`α`, `β`, `γ`), Kronecker products (Def. 1), Hadamard
//! products (Def. 2), diagonal operators (Def. 4), and the algebraic
//! identities of Prop. 1 / Prop. 2.
//!
//! This crate exists so every ground-truth Kronecker formula in `kron-core`
//! can be verified against *explicit* matrix computation on small factors —
//! an independent oracle with no shared code paths.

pub mod dense;
pub mod eigen;
pub mod indexing;
pub mod kronecker;
pub mod sparse;

pub use dense::DenseMatrix;
pub use eigen::{symmetric_eigenvalues, SymmetricMatrix};
pub use indexing::{alpha, beta, gamma, pair_of, vertex_of, BlockIndex};
pub use sparse::SparseBoolMatrix;
