//! Sparse boolean (0/1) matrices: the adjacency-matrix view of a graph,
//! with conversions to the dense oracle representation.

use std::collections::BTreeSet;

use crate::dense::DenseMatrix;

/// A sparse square boolean matrix stored as a sorted coordinate set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseBoolMatrix {
    n: usize,
    entries: BTreeSet<(u64, u64)>,
}

impl SparseBoolMatrix {
    /// Empty `n × n` matrix.
    pub fn new(n: usize) -> Self {
        SparseBoolMatrix { n, entries: BTreeSet::new() }
    }

    /// Builds from coordinates, asserting they are in range.
    pub fn from_coords(n: usize, coords: impl IntoIterator<Item = (u64, u64)>) -> Self {
        let mut m = Self::new(n);
        for (r, c) in coords {
            m.insert(r, c);
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sets entry `(r, c)` to 1.
    pub fn insert(&mut self, r: u64, c: u64) {
        assert!(r < self.n as u64 && c < self.n as u64, "index out of range");
        self.entries.insert((r, c));
    }

    /// True when entry `(r, c)` is 1.
    pub fn get(&self, r: u64, c: u64) -> bool {
        self.entries.contains(&(r, c))
    }

    /// Iterates nonzero coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Converts to the dense integer representation.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.n, self.n);
        for &(r, c) in &self.entries {
            d.set(r as usize, c as usize, 1);
        }
        d
    }

    /// Boolean Kronecker product: nonzero at `(i·n_b + k, j·n_b + l)` iff
    /// `self[i,j]` and `other[k,l]` are both nonzero (Def. 1 on 0/1 inputs).
    pub fn kronecker(&self, other: &SparseBoolMatrix) -> SparseBoolMatrix {
        let nb = other.n as u64;
        let mut out = SparseBoolMatrix::new(self.n * other.n);
        for &(i, j) in &self.entries {
            for &(k, l) in &other.entries {
                out.insert(i * nb + k, j * nb + l);
            }
        }
        out
    }

    /// Entrywise AND (Hadamard product on 0/1 matrices).
    pub fn hadamard(&self, other: &SparseBoolMatrix) -> SparseBoolMatrix {
        assert_eq!(self.n, other.n, "shape mismatch");
        SparseBoolMatrix {
            n: self.n,
            entries: self.entries.intersection(&other.entries).copied().collect(),
        }
    }

    /// Entrywise OR (boolean sum).
    pub fn union(&self, other: &SparseBoolMatrix) -> SparseBoolMatrix {
        assert_eq!(self.n, other.n, "shape mismatch");
        SparseBoolMatrix {
            n: self.n,
            entries: self.entries.union(&other.entries).copied().collect(),
        }
    }

    /// Adds ones along the full diagonal (`A + I` as boolean OR).
    pub fn with_identity(&self) -> SparseBoolMatrix {
        let mut out = self.clone();
        for i in 0..self.n as u64 {
            out.entries.insert((i, i));
        }
        out
    }

    /// True when symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.entries.iter().all(|&(r, c)| self.entries.contains(&(c, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> SparseBoolMatrix {
        SparseBoolMatrix::from_coords(2, [(0, 1), (1, 0)])
    }

    #[test]
    fn insert_get_nnz() {
        let mut m = SparseBoolMatrix::new(3);
        assert_eq!(m.nnz(), 0);
        m.insert(0, 2);
        m.insert(0, 2);
        assert_eq!(m.nnz(), 1);
        assert!(m.get(0, 2));
        assert!(!m.get(2, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range() {
        SparseBoolMatrix::new(2).insert(2, 0);
    }

    #[test]
    fn to_dense_matches() {
        let m = two_cycle();
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 1);
        assert_eq!(d.get(1, 0), 1);
        assert_eq!(d.get(0, 0), 0);
    }

    #[test]
    fn kronecker_of_edges() {
        // K2 ⊗ K2 = two disjoint edges (the classic disconnect).
        let k2 = two_cycle();
        let c = k2.kronecker(&k2);
        assert_eq!(c.n(), 4);
        assert_eq!(c.nnz(), 4);
        assert!(c.get(0, 3)); // (0,0)x(1,1)
        assert!(c.get(1, 2));
        assert!(!c.get(0, 1));
    }

    #[test]
    fn kronecker_block_layout() {
        // A = [[1,0],[0,0]] (single entry at (0,0)) ⊗ B places B in block (0,0).
        let a = SparseBoolMatrix::from_coords(2, [(0, 0)]);
        let b = SparseBoolMatrix::from_coords(3, [(1, 2)]);
        let c = a.kronecker(&b);
        assert_eq!(c.nnz(), 1);
        assert!(c.get(1, 2));
    }

    #[test]
    fn hadamard_and_union() {
        let a = SparseBoolMatrix::from_coords(2, [(0, 0), (0, 1)]);
        let b = SparseBoolMatrix::from_coords(2, [(0, 1), (1, 1)]);
        assert_eq!(a.hadamard(&b), SparseBoolMatrix::from_coords(2, [(0, 1)]));
        assert_eq!(
            a.union(&b),
            SparseBoolMatrix::from_coords(2, [(0, 0), (0, 1), (1, 1)])
        );
    }

    #[test]
    fn with_identity_sets_diagonal() {
        let m = two_cycle().with_identity();
        assert!(m.get(0, 0));
        assert!(m.get(1, 1));
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn symmetry() {
        assert!(two_cycle().is_symmetric());
        assert!(!SparseBoolMatrix::from_coords(2, [(0, 1)]).is_symmetric());
    }
}
