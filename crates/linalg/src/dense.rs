//! Exact dense integer matrices.
//!
//! Entries are `i64`: all the paper's formulas on 0/1 adjacency factors
//! involve only small integer intermediates (powers `A³`, Hadamard masks,
//! quadratic forms), so exact integer arithmetic avoids any floating-point
//! tolerance in oracle comparisons.

use std::ops::{Add, Mul, Sub};

/// A dense row-major `rows × cols` matrix of `i64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl DenseMatrix {
    /// All-zeros matrix (the paper's `O_A`).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Identity matrix (`I_A`).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Builds from nested rows; all rows must share a length.
    pub fn from_rows(rows: Vec<Vec<i64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        DenseMatrix { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> i64 {
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: i64) {
        self.data[r * self.cols + c] = value;
    }

    /// Matrix transpose (`Aᵗ`).
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Scalar multiple `s·A`.
    pub fn scale(&self, s: i64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Hadamard (entrywise) product `A ∘ B` (Def. 2).
    pub fn hadamard(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).collect(),
        }
    }

    /// Matrix power `A^k` for square `A`; `A^0 = I`.
    pub fn pow(&self, k: u32) -> DenseMatrix {
        assert!(self.is_square(), "pow requires a square matrix");
        let mut acc = Self::identity(self.rows);
        for _ in 0..k {
            acc = &acc * self;
        }
        acc
    }

    /// The diagonal-mask matrix `D_A = I_A ∘ A` (Def. 4).
    pub fn diagonal_matrix(&self) -> DenseMatrix {
        assert!(self.is_square());
        let mut d = Self::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            d.set(i, i, self.get(i, i));
        }
        d
    }

    /// The diagonal operator `diag(A) = (I_A ∘ A)·1` as a vector (Def. 4).
    pub fn diag_vector(&self) -> Vec<i64> {
        assert!(self.is_square());
        (0..self.rows).map(|i| self.get(i, i)).collect()
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[i64]) -> Vec<i64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect()
    }

    /// Bilinear form `xᵗ A y` (used for the community edge counts of Def. 13).
    pub fn bilinear(&self, x: &[i64], y: &[i64]) -> i64 {
        assert_eq!(x.len(), self.rows);
        assert_eq!(y.len(), self.cols);
        self.matvec(y).iter().zip(x).map(|(&av, &xv)| av * xv).sum()
    }

    /// Row sums `A·1` (degree vector for an adjacency matrix).
    pub fn row_sums(&self) -> Vec<i64> {
        self.matvec(&vec![1; self.cols])
    }

    /// True when symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.is_square()
            && (0..self.rows).all(|r| (0..r).all(|c| self.get(r, c) == self.get(c, r)))
    }
}

impl Add for &DenseMatrix {
    type Output = DenseMatrix;
    fn add(self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a + b).collect(),
        }
    }
}

impl Sub for &DenseMatrix {
    type Output = DenseMatrix;
    fn sub(self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| a - b).collect(),
        }
    }
}

impl Mul for &DenseMatrix {
    type Output = DenseMatrix;
    fn mul(self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..other.cols {
                    let cur = out.get(r, c);
                    out.set(r, c, cur + a * other.get(k, c));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(vec![vec![1, 2], vec![3, 4]])
    }

    #[test]
    fn constructors() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert_eq!(z.get(1, 2), 0);
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1);
        assert_eq!(i.get(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        DenseMatrix::from_rows(vec![vec![1], vec![1, 2]]);
    }

    #[test]
    fn add_sub_scale() {
        let a = sample();
        let sum = &a + &a;
        assert_eq!(sum, a.scale(2));
        let diff = &sum - &a;
        assert_eq!(diff, a);
    }

    #[test]
    fn matmul_known() {
        let a = sample();
        let b = DenseMatrix::from_rows(vec![vec![0, 1], vec![1, 0]]);
        let ab = &a * &b;
        assert_eq!(ab, DenseMatrix::from_rows(vec![vec![2, 1], vec![4, 3]]));
    }

    #[test]
    fn matmul_identity() {
        let a = sample();
        assert_eq!(&a * &DenseMatrix::identity(2), a);
        assert_eq!(&DenseMatrix::identity(2) * &a, a);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = sample();
        assert_eq!(a.pow(0), DenseMatrix::identity(2));
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(3), &(&a * &a) * &a);
    }

    #[test]
    fn transpose_involutive() {
        let a = DenseMatrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn hadamard_entrywise() {
        let a = sample();
        let h = a.hadamard(&a);
        assert_eq!(h, DenseMatrix::from_rows(vec![vec![1, 4], vec![9, 16]]));
    }

    #[test]
    fn diagonal_operators() {
        let a = sample();
        assert_eq!(a.diagonal_matrix(), DenseMatrix::from_rows(vec![vec![1, 0], vec![0, 4]]));
        assert_eq!(a.diag_vector(), vec![1, 4]);
        // Def. 4: diag(A) = (I ∘ A)·1.
        let masked = DenseMatrix::identity(2).hadamard(&a);
        assert_eq!(masked.row_sums(), a.diag_vector());
    }

    #[test]
    fn matvec_and_bilinear() {
        let a = sample();
        assert_eq!(a.matvec(&[1, 1]), vec![3, 7]);
        assert_eq!(a.row_sums(), vec![3, 7]);
        // xᵗ A y with x = e0, y = e1 picks entry (0,1).
        assert_eq!(a.bilinear(&[1, 0], &[0, 1]), 2);
        assert_eq!(a.bilinear(&[1, 1], &[1, 1]), 10);
    }

    #[test]
    fn symmetry_check() {
        assert!(!sample().is_symmetric());
        let s = DenseMatrix::from_rows(vec![vec![0, 1], vec![1, 0]]);
        assert!(s.is_symmetric());
        assert!(!DenseMatrix::zeros(2, 3).is_symmetric());
    }
}
