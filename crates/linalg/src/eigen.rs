//! Symmetric eigensolver (cyclic Jacobi rotations).
//!
//! The paper's §IV-C remark: "due to the Kronecker structure a spectral
//! method can efficiently solve for large swathes of the eigenspace of
//! C". Demonstrating that requires an eigensolver for the factor
//! adjacencies — built here from scratch: classical cyclic Jacobi, which
//! is simple, numerically robust for the small symmetric matrices factor
//! graphs produce, and needs no external dependencies.

/// A dense symmetric matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymmetricMatrix {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        SymmetricMatrix { n, data: vec![0.0; n * n] }
    }

    /// Builds from a flat row-major buffer, checking symmetry.
    pub fn from_flat(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "buffer size mismatch");
        let m = SymmetricMatrix { n, data };
        for i in 0..n {
            for j in 0..i {
                assert!(
                    (m.get(i, j) - m.get(j, i)).abs() < 1e-12,
                    "matrix not symmetric at ({i},{j})"
                );
            }
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Symmetric entry mutator (sets both `(i,j)` and `(j,i)`).
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, value: f64) {
        self.data[i * self.n + j] = value;
        self.data[j * self.n + i] = value;
    }

    /// Sum of squared off-diagonal entries (the Jacobi convergence
    /// functional).
    pub fn off_diagonal_norm_sq(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j) * self.get(i, j);
                }
            }
        }
        s
    }

    /// All eigenvalues by cyclic Jacobi, sorted ascending.
    ///
    /// Runs sweeps of rotations over every off-diagonal pair until the
    /// off-diagonal norm drops below `tol` (relative to the Frobenius
    /// norm) or `max_sweeps` is exhausted. For adjacency matrices of
    /// factor-sized graphs (n ≲ 2000) this converges in a handful of
    /// sweeps.
    pub fn eigenvalues(&self, tol: f64, max_sweeps: usize) -> Vec<f64> {
        let n = self.n;
        if n == 0 {
            return vec![];
        }
        let mut a = self.clone();
        let fro: f64 = a.data.iter().map(|x| x * x).sum::<f64>().max(1e-300);
        let threshold = tol * tol * fro;
        for _ in 0..max_sweeps {
            if a.off_diagonal_norm_sq() <= threshold {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let (app, aqq) = (a.get(p, p), a.get(q, q));
                    // Rotation angle: tan(2θ) = 2 a_pq / (a_qq − a_pp).
                    let theta = 0.5 * (2.0 * apq).atan2(aqq - app);
                    let (s, c) = theta.sin_cos();
                    // Apply J^T A J on rows/cols p, q.
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set_sym(k, p, c * akp - s * akq);
                        a.set_sym(k, q, s * akp + c * akq);
                    }
                    let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                    let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                    a.data[p * n + p] = new_pp;
                    a.data[q * n + q] = new_qq;
                    a.set_sym(p, q, 0.0);
                }
            }
        }
        let mut eigs: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        eigs.sort_by(|x, y| x.partial_cmp(y).expect("no NaNs"));
        eigs
    }
}

/// Convenience: eigenvalues with default tolerance (`1e-12`, 60 sweeps).
pub fn symmetric_eigenvalues(m: &SymmetricMatrix) -> Vec<f64> {
    m.eigenvalues(1e-12, 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let mut m = SymmetricMatrix::zeros(3);
        m.set_sym(0, 0, 3.0);
        m.set_sym(1, 1, -1.0);
        m.set_sym(2, 2, 7.0);
        assert!(close(&symmetric_eigenvalues(&m), &[-1.0, 3.0, 7.0], 1e-10));
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let mut m = SymmetricMatrix::zeros(2);
        m.set_sym(0, 0, 2.0);
        m.set_sym(1, 1, 2.0);
        m.set_sym(0, 1, 1.0);
        assert!(close(&symmetric_eigenvalues(&m), &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n adjacency: eigenvalues n−1 (once) and −1 (n−1 times).
        let n = 6;
        let mut m = SymmetricMatrix::zeros(n);
        for i in 0..n {
            for j in 0..i {
                m.set_sym(i, j, 1.0);
            }
        }
        let eigs = symmetric_eigenvalues(&m);
        let mut expected = vec![-1.0; n - 1];
        expected.push((n - 1) as f64);
        assert!(close(&eigs, &expected, 1e-9), "{eigs:?}");
    }

    #[test]
    fn cycle_graph_spectrum() {
        // C_n adjacency: eigenvalues 2cos(2πk/n).
        let n = 8;
        let mut m = SymmetricMatrix::zeros(n);
        for i in 0..n {
            m.set_sym(i, (i + 1) % n, 1.0);
        }
        let eigs = symmetric_eigenvalues(&m);
        let mut expected: Vec<f64> = (0..n)
            .map(|k| 2.0 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        expected.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        assert!(close(&eigs, &expected, 1e-9), "{eigs:?} vs {expected:?}");
    }

    #[test]
    fn path_graph_spectrum() {
        // P_n adjacency: eigenvalues 2cos(kπ/(n+1)), k = 1..n.
        let n = 5;
        let mut m = SymmetricMatrix::zeros(n);
        for i in 0..n - 1 {
            m.set_sym(i, i + 1, 1.0);
        }
        let eigs = symmetric_eigenvalues(&m);
        let mut expected: Vec<f64> = (1..=n)
            .map(|k| 2.0 * (k as f64 * std::f64::consts::PI / (n + 1) as f64).cos())
            .collect();
        expected.sort_by(|x, y| x.partial_cmp(y).expect("no NaN"));
        assert!(close(&eigs, &expected, 1e-9));
    }

    #[test]
    fn trace_preserved() {
        // Random symmetric matrix: Σλ = trace, Σλ² = ‖A‖_F².
        let n = 10;
        let mut m = SymmetricMatrix::zeros(n);
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..=i {
                m.set_sym(i, j, next());
            }
        }
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let fro: f64 = m.data.iter().map(|x| x * x).sum();
        let eigs = symmetric_eigenvalues(&m);
        let eig_sum: f64 = eigs.iter().sum();
        let eig_sq: f64 = eigs.iter().map(|x| x * x).sum();
        assert!((trace - eig_sum).abs() < 1e-9, "{trace} vs {eig_sum}");
        assert!((fro - eig_sq).abs() < 1e-8, "{fro} vs {eig_sq}");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(symmetric_eigenvalues(&SymmetricMatrix::zeros(0)).is_empty());
        let mut one = SymmetricMatrix::zeros(1);
        one.set_sym(0, 0, 5.0);
        assert_eq!(symmetric_eigenvalues(&one), vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn rejects_asymmetric_input() {
        SymmetricMatrix::from_flat(2, vec![0.0, 1.0, 2.0, 0.0]);
    }
}
