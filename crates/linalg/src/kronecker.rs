//! Explicit Kronecker products (Def. 1) and the Prop. 1 / Prop. 2 algebra.
//!
//! These routines are the *oracle* implementations: quadratic/worse in the
//! product size, used only to verify the `kron-core` formulas on small
//! factors. The property tests at the bottom machine-check every identity
//! the paper's proofs rely on.

use crate::dense::DenseMatrix;

/// Dense Kronecker product `A ⊗ B` (Def. 1).
///
/// ```
/// use kron_linalg::kronecker::kron_dense;
/// use kron_linalg::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(vec![vec![1, 0], vec![0, 1]]);
/// let b = DenseMatrix::from_rows(vec![vec![0, 2], vec![3, 0]]);
/// let c = kron_dense(&a, &b);
/// assert_eq!(c.get(0, 1), 2); // block (0,0) = 1·B
/// assert_eq!(c.get(2, 3), 2); // block (1,1) = 1·B
/// assert_eq!(c.get(0, 3), 0); // block (0,1) = 0·B
/// ```
pub fn kron_dense(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (ma, na) = (a.rows(), a.cols());
    let (mb, nb) = (b.rows(), b.cols());
    let mut out = DenseMatrix::zeros(ma * mb, na * nb);
    for i in 0..ma {
        for j in 0..na {
            let aij = a.get(i, j);
            if aij == 0 {
                continue;
            }
            for k in 0..mb {
                for l in 0..nb {
                    out.set(i * mb + k, j * nb + l, aij * b.get(k, l));
                }
            }
        }
    }
    out
}

/// Kronecker product of vectors: `(x ⊗ y)[i·len(y) + k] = x[i]·y[k]`.
pub fn kron_vec(x: &[i64], y: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(x.len() * y.len());
    for &xi in x {
        for &yk in y {
            out.push(xi * yk);
        }
    }
    out
}

/// Floating-point Kronecker product of vectors.
pub fn kron_vec_f64(x: &[f64], y: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len() * y.len());
    for &xi in x {
        for &yk in y {
            out.push(xi * yk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
        proptest::collection::vec(
            proptest::collection::vec(-3i64..=3, cols),
            rows,
        )
        .prop_map(DenseMatrix::from_rows)
    }

    fn sq(n: usize) -> impl Strategy<Value = DenseMatrix> {
        mat(n, n)
    }

    #[test]
    fn kron_known_value() {
        let a = DenseMatrix::from_rows(vec![vec![1, 2], vec![3, 4]]);
        let b = DenseMatrix::from_rows(vec![vec![0, 5], vec![6, 7]]);
        let c = kron_dense(&a, &b);
        assert_eq!(c.rows(), 4);
        assert_eq!(c.cols(), 4);
        // Block (0,1) is 2·B.
        assert_eq!(c.get(0, 2), 0);
        assert_eq!(c.get(0, 3), 10);
        assert_eq!(c.get(1, 2), 12);
        assert_eq!(c.get(1, 3), 14);
        // Block (1,0) is 3·B.
        assert_eq!(c.get(3, 1), 21);
    }

    #[test]
    fn kron_vec_known_value() {
        assert_eq!(kron_vec(&[1, 2], &[3, 4, 5]), vec![3, 4, 5, 6, 8, 10]);
        assert_eq!(kron_vec(&[], &[1]), Vec::<i64>::new());
    }

    #[test]
    fn kron_vec_f64_known_value() {
        assert_eq!(kron_vec_f64(&[0.5, 2.0], &[4.0]), vec![2.0, 8.0]);
    }

    #[test]
    fn kron_with_identity_is_block_diagonal() {
        let b = DenseMatrix::from_rows(vec![vec![1, 2], vec![3, 4]]);
        let c = kron_dense(&DenseMatrix::identity(2), &b);
        assert_eq!(c.get(0, 0), 1);
        assert_eq!(c.get(0, 2), 0);
        assert_eq!(c.get(2, 2), 1);
        assert_eq!(c.get(3, 2), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Prop. 1(a): (a1·a2)(A1 ⊗ A2) = (a1·A1) ⊗ (a2·A2).
        #[test]
        fn prop1a_scalar_multiplication(a in sq(2), b in sq(3), s1 in -3i64..=3, s2 in -3i64..=3) {
            prop_assert_eq!(
                kron_dense(&a, &b).scale(s1 * s2),
                kron_dense(&a.scale(s1), &b.scale(s2))
            );
        }

        /// Prop. 1(b): (A1 + A2) ⊗ A3 = (A1 ⊗ A3) + (A2 ⊗ A3), and the
        /// right-distributive twin.
        #[test]
        fn prop1b_distributivity(a1 in sq(2), a2 in sq(2), a3 in sq(3)) {
            prop_assert_eq!(
                kron_dense(&(&a1 + &a2), &a3),
                &kron_dense(&a1, &a3) + &kron_dense(&a2, &a3)
            );
            prop_assert_eq!(
                kron_dense(&a3, &(&a1 + &a2)),
                &kron_dense(&a3, &a1) + &kron_dense(&a3, &a2)
            );
        }

        /// Prop. 1(c): (A1 ⊗ A2)ᵗ = A1ᵗ ⊗ A2ᵗ.
        #[test]
        fn prop1c_transposition(a in mat(2, 3), b in mat(3, 2)) {
            prop_assert_eq!(
                kron_dense(&a, &b).transpose(),
                kron_dense(&a.transpose(), &b.transpose())
            );
        }

        /// Prop. 1(d): (A1 ⊗ A2)(A3 ⊗ A4) = (A1·A3) ⊗ (A2·A4).
        #[test]
        fn prop1d_mixed_product(a1 in sq(2), a2 in sq(2), a3 in sq(2), a4 in sq(2)) {
            prop_assert_eq!(
                &kron_dense(&a1, &a2) * &kron_dense(&a3, &a4),
                kron_dense(&(&a1 * &a3), &(&a2 * &a4))
            );
        }

        /// Prop. 2(a)/(b): Hadamard commutativity and scalar rule.
        #[test]
        fn prop2ab_hadamard_basics(a in sq(3), b in sq(3), s1 in -3i64..=3, s2 in -3i64..=3) {
            prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
            prop_assert_eq!(
                a.hadamard(&b).scale(s1 * s2),
                a.scale(s1).hadamard(&b.scale(s2))
            );
        }

        /// Prop. 2(c): Hadamard distributes over addition.
        #[test]
        fn prop2c_hadamard_distributivity(a1 in sq(3), a2 in sq(3), a3 in sq(3)) {
            prop_assert_eq!(
                (&a1 + &a2).hadamard(&a3),
                &a1.hadamard(&a3) + &a2.hadamard(&a3)
            );
        }

        /// Prop. 2(d): (A1 ∘ A2)ᵗ = A1ᵗ ∘ A2ᵗ.
        #[test]
        fn prop2d_hadamard_transpose(a in mat(2, 3), b in mat(2, 3)) {
            prop_assert_eq!(
                a.hadamard(&b).transpose(),
                a.transpose().hadamard(&b.transpose())
            );
        }

        /// Prop. 2(e): (A1 ⊗ A2) ∘ (A3 ⊗ A4) = (A1 ∘ A3) ⊗ (A2 ∘ A4).
        #[test]
        fn prop2e_hadamard_kron_distributivity(
            a1 in sq(2), a2 in sq(3), a3 in sq(2), a4 in sq(3)
        ) {
            prop_assert_eq!(
                kron_dense(&a1, &a2).hadamard(&kron_dense(&a3, &a4)),
                kron_dense(&a1.hadamard(&a3), &a2.hadamard(&a4))
            );
        }

        /// Prop. 2(f): diag(A1 ⊗ A2) = diag(A1) ⊗ diag(A2).
        #[test]
        fn prop2f_diag_kron_distributivity(a1 in sq(2), a2 in sq(3)) {
            prop_assert_eq!(
                kron_dense(&a1, &a2).diag_vector(),
                kron_vec(&a1.diag_vector(), &a2.diag_vector())
            );
        }

        /// Sparse and dense Kronecker agree on 0/1 inputs.
        #[test]
        fn sparse_dense_kron_agree(
            coords_a in proptest::collection::btree_set((0u64..3, 0u64..3), 0..6),
            coords_b in proptest::collection::btree_set((0u64..4, 0u64..4), 0..8),
        ) {
            use crate::sparse::SparseBoolMatrix;
            let sa = SparseBoolMatrix::from_coords(3, coords_a);
            let sb = SparseBoolMatrix::from_coords(4, coords_b);
            prop_assert_eq!(
                sa.kronecker(&sb).to_dense(),
                kron_dense(&sa.to_dense(), &sb.to_dense())
            );
        }

        /// Vector Kronecker is the matrix Kronecker of column vectors.
        #[test]
        fn vec_kron_matches_matrix(
            x in proptest::collection::vec(-3i64..=3, 1..4),
            y in proptest::collection::vec(-3i64..=3, 1..4),
        ) {
            let xm = DenseMatrix::from_rows(x.iter().map(|&v| vec![v]).collect());
            let ym = DenseMatrix::from_rows(y.iter().map(|&v| vec![v]).collect());
            let km = kron_dense(&xm, &ym);
            let kv = kron_vec(&x, &y);
            prop_assert_eq!(km.rows(), kv.len());
            for (i, &v) in kv.iter().enumerate() {
                prop_assert_eq!(km.get(i, 0), v);
            }
        }
    }
}
