//! Seeded random graph families: Erdős–Rényi and Barabási–Albert.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;
use crate::CsrGraph;

/// Erdős–Rényi `G(n, p)`: each unordered pair is an edge independently with
/// probability `p`. Deterministic for a fixed `seed`.
pub fn erdos_renyi(n: u64, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = EdgeList::new(n);
    if p > 0.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < p {
                    list.add_undirected(u, v).expect("in range");
                }
            }
        }
    }
    CsrGraph::from_edge_list(&list)
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m0 = m + 1` seed vertices, then each new vertex attaches to `m` distinct
/// existing vertices chosen proportionally to degree.
///
/// Produces a connected, scale-free, loop-free simple graph with
/// approximately `m·n` edges — the stand-in family for the paper's gnutella
/// peer-to-peer factor.
pub fn barabasi_albert(n: u64, m: u64, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count m must be >= 1");
    let m0 = m + 1;
    assert!(n >= m0, "need n >= m+1 (got n={n}, m={m})");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = EdgeList::new(n);
    // `targets` holds one entry per edge endpoint, so sampling a uniform
    // element is degree-proportional sampling.
    let mut endpoint_pool: Vec<u64> = Vec::with_capacity((2 * m * n) as usize);
    for u in 0..m0 {
        for v in (u + 1)..m0 {
            list.add_undirected(u, v).expect("in range");
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    let mut chosen: Vec<u64> = Vec::with_capacity(m as usize);
    for new in m0..n {
        chosen.clear();
        while chosen.len() < m as usize {
            let pick = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            list.add_undirected(new, t).expect("in range");
            endpoint_pool.push(new);
            endpoint_pool.push(t);
        }
    }
    CsrGraph::from_edge_list(&list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;

    #[test]
    fn er_deterministic_for_seed() {
        let a = erdos_renyi(50, 0.2, 7);
        let b = erdos_renyi(50, 0.2, 7);
        assert_eq!(a, b);
        let c = erdos_renyi(50, 0.2, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn er_extremes() {
        let empty = erdos_renyi(20, 0.0, 1);
        assert_eq!(empty.nnz(), 0);
        let full = erdos_renyi(20, 1.0, 1);
        assert_eq!(full.undirected_edge_count(), 190);
    }

    #[test]
    fn er_density_near_p() {
        let n = 200u64;
        let p = 0.1;
        let g = erdos_renyi(n, p, 42);
        let possible = (n * (n - 1) / 2) as f64;
        let density = g.undirected_edge_count() as f64 / possible;
        assert!((density - p).abs() < 0.02, "density {density} far from {p}");
    }

    #[test]
    fn er_is_simple_undirected() {
        let g = erdos_renyi(60, 0.3, 5);
        assert!(g.is_undirected());
        assert!(g.is_loop_free());
    }

    #[test]
    fn ba_edge_count_and_shape() {
        let n = 300u64;
        let m = 3u64;
        let g = barabasi_albert(n, m, 11);
        let m0 = m + 1;
        let expected = m0 * (m0 - 1) / 2 + (n - m0) * m;
        assert_eq!(g.undirected_edge_count(), expected);
        assert!(g.is_loop_free());
        assert!(g.is_undirected());
        assert!(is_connected(&g));
        // Scale-free flavor: max degree well above the mean.
        let stats = crate::degree::degree_stats(&g);
        assert!(stats.max as f64 > 3.0 * stats.mean);
    }

    #[test]
    fn ba_deterministic_for_seed() {
        assert_eq!(barabasi_albert(100, 2, 3), barabasi_albert(100, 2, 3));
        assert_ne!(barabasi_albert(100, 2, 3), barabasi_albert(100, 2, 4));
    }

    #[test]
    #[should_panic(expected = "n >= m+1")]
    fn ba_rejects_tiny_n() {
        barabasi_albert(2, 3, 0);
    }
}
