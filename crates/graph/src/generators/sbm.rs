//! Stochastic block model generator.
//!
//! The community-structure experiment (§VI) needs factors that are "stochastic
//! block models with `x` blocks, internal edge densities `ρ0` and external
//! edge densities `ρ1`" (paper Ex. 1). Block sizes and per-block internal
//! densities may be heterogeneous, which is how the GraphChallenge
//! `groundtruth_20000` stand-in gets its spread of densities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;
use crate::{CsrGraph, VertexId};

/// Configuration of a stochastic block model.
#[derive(Debug, Clone)]
pub struct SbmConfig {
    /// Size of each block; vertices are numbered block-contiguously.
    pub block_sizes: Vec<u64>,
    /// Within-block edge probability, per block (`len == block_sizes.len()`).
    pub p_in: Vec<f64>,
    /// Between-block edge probability (uniform across block pairs).
    pub p_out: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SbmConfig {
    /// Homogeneous model: `blocks` blocks of `size` vertices, shared `p_in`.
    pub fn uniform(blocks: usize, size: u64, p_in: f64, p_out: f64, seed: u64) -> Self {
        SbmConfig {
            block_sizes: vec![size; blocks],
            p_in: vec![p_in; blocks],
            p_out,
            seed,
        }
    }

    /// Total vertex count.
    pub fn n(&self) -> u64 {
        self.block_sizes.iter().sum()
    }

    /// Ground-truth partition: `labels[v]` = block of vertex `v`.
    pub fn labels(&self) -> Vec<u32> {
        let mut labels = Vec::with_capacity(self.n() as usize);
        for (b, &size) in self.block_sizes.iter().enumerate() {
            labels.extend(std::iter::repeat_n(b as u32, size as usize));
        }
        labels
    }

    /// Vertex ranges of each block as `(start, end)` half-open intervals.
    pub fn block_ranges(&self) -> Vec<(VertexId, VertexId)> {
        let mut ranges = Vec::with_capacity(self.block_sizes.len());
        let mut start = 0u64;
        for &size in &self.block_sizes {
            ranges.push((start, start + size));
            start += size;
        }
        ranges
    }
}

/// Samples a loop-free undirected SBM graph.
///
/// For dense probabilities every pair is tested; for the sparse between-block
/// regime a geometric skip sampler keeps generation `O(edges)`.
pub fn sbm(config: &SbmConfig) -> CsrGraph {
    assert_eq!(
        config.block_sizes.len(),
        config.p_in.len(),
        "p_in must have one entry per block"
    );
    assert!((0.0..=1.0).contains(&config.p_out), "p_out must be in [0,1]");
    for &p in &config.p_in {
        assert!((0.0..=1.0).contains(&p), "p_in entries must be in [0,1]");
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n();
    let mut list = EdgeList::new(n);
    let ranges = config.block_ranges();

    // Within-block edges (dense sampling; blocks are small).
    for (b, &(start, end)) in ranges.iter().enumerate() {
        let p = config.p_in[b];
        if p <= 0.0 {
            continue;
        }
        for u in start..end {
            for v in (u + 1)..end {
                if rng.gen::<f64>() < p {
                    list.add_undirected(u, v).expect("in range");
                }
            }
        }
    }

    // Between-block edges via geometric skips over the linearized pair index.
    if config.p_out > 0.0 {
        for bi in 0..ranges.len() {
            for bj in (bi + 1)..ranges.len() {
                sample_bipartite_pairs(&mut rng, ranges[bi], ranges[bj], config.p_out, &mut list);
            }
        }
    }
    CsrGraph::from_edge_list(&list)
}

/// Adds each pair `(u, v)` with `u` in `ra`, `v` in `rb` independently with
/// probability `p`, skipping geometrically between successes.
fn sample_bipartite_pairs(
    rng: &mut StdRng,
    ra: (u64, u64),
    rb: (u64, u64),
    p: f64,
    list: &mut EdgeList,
) {
    let rows = ra.1 - ra.0;
    let cols = rb.1 - rb.0;
    let total = (rows as u128) * (cols as u128);
    if total == 0 {
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut idx: u128 = 0;
    loop {
        // Geometric(p) skip: number of failures before the next success.
        let u: f64 = rng.gen::<f64>();
        let skip = if p >= 1.0 { 0 } else { (u.ln() / log_q).floor() as u128 };
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let r = (idx / cols as u128) as u64;
        let c = (idx % cols as u128) as u64;
        list.add_undirected(ra.0 + r, rb.0 + c).expect("in range");
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_ranges() {
        let cfg = SbmConfig {
            block_sizes: vec![2, 3],
            p_in: vec![1.0, 1.0],
            p_out: 0.0,
            seed: 0,
        };
        assert_eq!(cfg.n(), 5);
        assert_eq!(cfg.labels(), vec![0, 0, 1, 1, 1]);
        assert_eq!(cfg.block_ranges(), vec![(0, 2), (2, 5)]);
    }

    #[test]
    fn p_in_one_p_out_zero_gives_disjoint_cliques() {
        let cfg = SbmConfig::uniform(3, 4, 1.0, 0.0, 9);
        let g = sbm(&cfg);
        assert_eq!(g.n(), 12);
        assert_eq!(g.undirected_edge_count(), 3 * 6);
        assert_eq!(crate::connectivity::connected_components(&g).count, 3);
    }

    #[test]
    fn p_out_one_connects_everything() {
        let cfg = SbmConfig::uniform(2, 3, 0.0, 1.0, 9);
        let g = sbm(&cfg);
        // all 3*3 cross pairs, no internal edges
        assert_eq!(g.undirected_edge_count(), 9);
        assert!(g.has_arc(0, 3));
        assert!(!g.has_arc(0, 1));
    }

    #[test]
    fn densities_near_planted() {
        let cfg = SbmConfig::uniform(4, 50, 0.3, 0.01, 123);
        let g = sbm(&cfg);
        let ranges = cfg.block_ranges();
        // internal density of block 0
        let (s, e) = ranges[0];
        let mut internal = 0u64;
        for u in s..e {
            for v in (u + 1)..e {
                if g.has_arc(u, v) {
                    internal += 1;
                }
            }
        }
        let within_density = internal as f64 / (50.0 * 49.0 / 2.0);
        assert!((within_density - 0.3).abs() < 0.07, "got {within_density}");
        // rough external density over all cross pairs of blocks 0/1
        let mut external = 0u64;
        for u in 0..50 {
            for v in 50..100 {
                if g.has_arc(u, v) {
                    external += 1;
                }
            }
        }
        let cross_density = external as f64 / 2500.0;
        assert!((cross_density - 0.01).abs() < 0.01, "got {cross_density}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SbmConfig::uniform(3, 20, 0.2, 0.02, 77);
        assert_eq!(sbm(&cfg), sbm(&cfg));
        let mut cfg2 = cfg.clone();
        cfg2.seed = 78;
        assert_ne!(sbm(&cfg), sbm(&cfg2));
    }

    #[test]
    fn simple_and_undirected() {
        let cfg = SbmConfig::uniform(3, 15, 0.4, 0.05, 3);
        let g = sbm(&cfg);
        assert!(g.is_undirected());
        assert!(g.is_loop_free());
    }

    #[test]
    fn heterogeneous_blocks() {
        let cfg = SbmConfig {
            block_sizes: vec![10, 20, 30],
            p_in: vec![1.0, 0.0, 0.0],
            p_out: 0.0,
            seed: 1,
        };
        let g = sbm(&cfg);
        assert_eq!(g.n(), 60);
        assert_eq!(g.undirected_edge_count(), 45); // only block 0 is a clique
    }
}
