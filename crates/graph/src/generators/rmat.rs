//! R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos 2004).
//!
//! This is the stochastic baseline the paper contrasts with (§I): the
//! generator behind Graph500 and GraphChallenge workloads. The paper's
//! trillion-edge validation run used "two Graph500 scale 18 graphs with
//! different random seeds" as Kronecker factors — [`rmat`] with
//! Graph500-style parameters `(a,b,c,d) = (0.57, 0.19, 0.19, 0.05)`
//! reproduces that factor family at reduced scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edge_list::EdgeList;
use crate::CsrGraph;

/// R-MAT parameters.
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// Target undirected edges = `edge_factor * n` (Graph500 uses 16).
    pub edge_factor: u64,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability.
    pub d: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500-style configuration at the given scale and seed.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        RmatConfig { scale, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, d: 0.05, seed }
    }

    /// Vertex count `2^scale`.
    pub fn n(&self) -> u64 {
        1u64 << self.scale
    }
}

/// Samples an R-MAT graph: `edge_factor * n` pair draws, symmetrized,
/// deduplicated, self loops removed (matching common Graph500
/// post-processing for undirected triangle workloads).
///
/// ```
/// use kron_graph::generators::{rmat, RmatConfig};
///
/// let g = rmat(&RmatConfig::graph500(6, 42));
/// assert_eq!(g.n(), 64);
/// assert!(g.is_undirected() && g.is_loop_free());
/// ```
pub fn rmat(config: &RmatConfig) -> CsrGraph {
    let sum = config.a + config.b + config.c + config.d;
    assert!((sum - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1, got {sum}");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n();
    let draws = config.edge_factor * n;
    let mut list = EdgeList::new(n);
    for _ in 0..draws {
        let (u, v) = sample_pair(&mut rng, config);
        if u != v {
            list.add_undirected(u, v).expect("in range");
        }
    }
    list.sort_dedup();
    CsrGraph::from_edge_list(&list)
}

fn sample_pair(rng: &mut StdRng, config: &RmatConfig) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    let ab = config.a + config.b;
    let abc = ab + config.c;
    for _ in 0..config.scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < config.a {
            // upper-left: no bits set
        } else if r < ab {
            v |= 1;
        } else if r < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_simplicity() {
        let g = rmat(&RmatConfig::graph500(8, 42));
        assert_eq!(g.n(), 256);
        assert!(g.is_undirected());
        assert!(g.is_loop_free());
        // Duplicates collapse, so edge count is below the draw count but
        // should remain a significant fraction of it.
        let m = g.undirected_edge_count();
        assert!(m > 256, "too few edges: {m}");
        assert!(m <= 16 * 256);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(&RmatConfig::graph500(7, 1));
        let b = rmat(&RmatConfig::graph500(7, 1));
        assert_eq!(a, b);
        let c = rmat(&RmatConfig::graph500(7, 2));
        assert_ne!(a, c);
    }

    #[test]
    fn skew_produces_heavy_tail() {
        let g = rmat(&RmatConfig::graph500(10, 7));
        let stats = crate::degree::degree_stats(&g);
        assert!(
            stats.max as f64 > 5.0 * stats.mean,
            "expected heavy tail, max={} mean={}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn uniform_quadrants_flatten_degrees() {
        let cfg = RmatConfig {
            scale: 9,
            edge_factor: 8,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            seed: 5,
        };
        let g = rmat(&cfg);
        let stats = crate::degree::degree_stats(&g);
        assert!(
            (stats.max as f64) < 4.0 * stats.mean,
            "uniform R-MAT should look Erdős–Rényi-ish, max={} mean={}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(&RmatConfig { scale: 4, edge_factor: 2, a: 0.5, b: 0.5, c: 0.5, d: 0.5, seed: 0 });
    }
}
