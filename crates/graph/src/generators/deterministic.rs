//! Deterministic graph families with closed-form analytics.

use crate::edge_list::EdgeList;
use crate::CsrGraph;

/// Complete graph `K_n` (no self loops).
pub fn clique(n: u64) -> CsrGraph {
    let mut list = EdgeList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            list.add_undirected(u, v).expect("in range");
        }
    }
    CsrGraph::from_edge_list(&list)
}

/// Path graph `P_n`: edges `(i, i+1)`.
pub fn path(n: u64) -> CsrGraph {
    let mut list = EdgeList::new(n);
    for u in 1..n {
        list.add_undirected(u - 1, u).expect("in range");
    }
    CsrGraph::from_edge_list(&list)
}

/// Cycle graph `C_n` (requires `n >= 3` to be simple; smaller `n` degrades
/// to a path).
pub fn cycle(n: u64) -> CsrGraph {
    if n < 3 {
        return path(n);
    }
    let mut list = EdgeList::new(n);
    for u in 0..n {
        list.add_undirected(u, (u + 1) % n).expect("in range");
    }
    CsrGraph::from_edge_list(&list)
}

/// Star graph `S_n`: vertex 0 is the hub, vertices `1..n` are leaves.
pub fn star(n: u64) -> CsrGraph {
    let mut list = EdgeList::new(n);
    for v in 1..n {
        list.add_undirected(0, v).expect("in range");
    }
    CsrGraph::from_edge_list(&list)
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: u64, b: u64) -> CsrGraph {
    let mut list = EdgeList::new(a + b);
    for u in 0..a {
        for v in a..(a + b) {
            list.add_undirected(u, v).expect("in range");
        }
    }
    CsrGraph::from_edge_list(&list)
}

/// `rows × cols` grid graph with 4-neighbor connectivity.
pub fn grid(rows: u64, cols: u64) -> CsrGraph {
    let mut list = EdgeList::new(rows * cols);
    let id = |r: u64, c: u64| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                list.add_undirected(id(r, c), id(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                list.add_undirected(id(r, c), id(r + 1, c)).expect("in range");
            }
        }
    }
    CsrGraph::from_edge_list(&list)
}

/// `x` disjoint cliques of size `y` (the paper's Ex. 1 community factors).
pub fn disjoint_cliques(x: u64, y: u64) -> CsrGraph {
    crate::ops::disjoint_copies(&clique(y), x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;

    #[test]
    fn clique_counts() {
        let g = clique(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.undirected_edge_count(), 15);
        assert!(g.is_undirected());
        assert!(g.is_loop_free());
        assert!(g.degrees().iter().all(|&d| d == 5));
    }

    #[test]
    fn clique_degenerate() {
        assert_eq!(clique(0).n(), 0);
        assert_eq!(clique(1).undirected_edge_count(), 0);
    }

    #[test]
    fn path_structure() {
        let g = path(5);
        assert_eq!(g.undirected_edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.has_arc(3, 4));
        assert!(!g.has_arc(0, 2));
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(5);
        assert_eq!(g.undirected_edge_count(), 5);
        assert!(g.degrees().iter().all(|&d| d == 2));
        assert!(g.has_arc(4, 0));
        // degenerate sizes fall back to paths
        assert_eq!(cycle(2).undirected_edge_count(), 1);
    }

    #[test]
    fn star_structure() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!(g.degrees()[1..].iter().all(|&d| d == 1));
        assert_eq!(g.undirected_edge_count(), 6);
    }

    #[test]
    fn bipartite_structure() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.n(), 5);
        assert_eq!(g.undirected_edge_count(), 6);
        assert!(g.has_arc(0, 2));
        assert!(!g.has_arc(0, 1));
        assert!(!g.has_arc(2, 3));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.undirected_edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn disjoint_cliques_structure() {
        let g = disjoint_cliques(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.undirected_edge_count(), 18);
        assert_eq!(connected_components(&g).count, 3);
    }
}
