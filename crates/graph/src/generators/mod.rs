//! Graph generators for factor construction and baselines.
//!
//! Deterministic families (cliques, paths, cycles, stars, bipartite, grids)
//! give exactly-known analytics for testing the Kronecker formulas; the
//! seeded random families (Erdős–Rényi, Barabási–Albert, stochastic block
//! models, R-MAT) provide the paper's workloads: R-MAT is the stochastic
//! baseline the paper contrasts with (§I), SBM drives the community
//! experiment (§VI, Ex. 1), and preferential attachment stands in for the
//! gnutella peer-to-peer factor (§V-A).

mod deterministic;
mod random;
mod rmat;
mod sbm;

pub use deterministic::{
    clique, complete_bipartite, cycle, disjoint_cliques, grid, path, star,
};
pub use random::{barabasi_albert, erdos_renyi};
pub use rmat::{rmat, RmatConfig};
pub use sbm::{sbm, SbmConfig};
