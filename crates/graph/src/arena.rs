//! Reusable scratch-buffer arena for the kernel tier.
//!
//! The bitmap triangle kernel, the bitset multi-source BFS, and the
//! class-collapsed closeness batch all need short-lived scratch vectors
//! (anchor bitmaps, frontier words, match buffers, memo grids) whose
//! sizes repeat call after call. Allocating them fresh per call is pure
//! churn — the PR 5 measured-allocation profile showed thousands of
//! identical-size allocations per `closeness_batch` sweep. [`Arena`] is
//! a small typed pool: [`Arena::take_words`] / [`Arena::take_ints`]
//! hand out **zeroed** buffers recycled from earlier takes, and the RAII
//! guard returns the backing storage to the pool on drop.
//!
//! ## Determinism contract
//!
//! A recycled buffer is indistinguishable from a fresh one: every take
//! zeroes the requested prefix before handing it out, so no state leaks
//! between calls and results are bit-identical whether a take hits the
//! pool or allocates. The pool itself only affects *where* the bytes
//! live, never what they hold.
//!
//! ## Concurrency
//!
//! The pool is a mutex over a free list; takes happen once per kernel
//! call (or once per worker in the `_threads` variants), never in inner
//! loops, so the lock is uncontended in practice. Guards are `Send`, so
//! workers under `std::thread::scope` can take and drop buffers freely.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum buffers kept per pool; extras are dropped on return so a burst
/// of oversubscribed workers cannot pin memory forever.
const POOL_CAP: usize = 32;

/// Cumulative take statistics (process lifetime, monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Takes served from the pool with sufficient capacity (no allocation).
    pub hits: u64,
    /// Takes that had to allocate or grow a buffer.
    pub misses: u64,
}

/// A typed pool of reusable scratch buffers (see module docs).
pub struct Arena {
    words: Mutex<Vec<Vec<u64>>>,
    ints: Mutex<Vec<Vec<u32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Arena {
    /// An empty arena.
    pub const fn new() -> Self {
        Arena {
            words: Mutex::new(Vec::new()),
            ints: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The process-wide arena the built-in kernels draw from.
    pub fn global() -> &'static Arena {
        static GLOBAL: OnceLock<Arena> = OnceLock::new();
        GLOBAL.get_or_init(Arena::new)
    }

    /// Takes a zeroed `u64` buffer of exactly `len` entries.
    pub fn take_words(&self, len: usize) -> ArenaBuf<'_, u64> {
        Self::take_from(&self.words, &self.hits, &self.misses, len)
    }

    /// Takes a zeroed `u32` buffer of exactly `len` entries.
    pub fn take_ints(&self, len: usize) -> ArenaBuf<'_, u32> {
        Self::take_from(&self.ints, &self.hits, &self.misses, len)
    }

    fn take_from<'a, T: Copy + Default>(
        pool: &'a Mutex<Vec<Vec<T>>>,
        hits: &AtomicU64,
        misses: &AtomicU64,
        len: usize,
    ) -> ArenaBuf<'a, T> {
        // Best fit: the smallest pooled buffer whose capacity suffices;
        // otherwise recycle the largest (its capacity grows once) or
        // allocate fresh when the pool is empty.
        let mut guard = pool.lock().unwrap_or_else(|p| p.into_inner());
        let pick = guard
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                guard
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, b)| b.capacity())
                    .map(|(i, _)| i)
            });
        let mut buf = match pick {
            Some(i) => guard.swap_remove(i),
            None => Vec::new(),
        };
        drop(guard);
        let hit = buf.capacity() >= len;
        if hit {
            hits.fetch_add(1, Ordering::Relaxed);
            kron_obs::counter!("arena.take_hits").add(1);
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
            kron_obs::counter!("arena.take_misses").add(1);
        }
        // Zero the full requested prefix: recycled contents must never be
        // observable (determinism contract above).
        buf.clear();
        buf.resize(len, T::default());
        ArenaBuf { pool, buf }
    }

    /// Cumulative hit/miss counts for this arena.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

/// RAII scratch buffer: derefs to a slice, returns its storage to the
/// owning [`Arena`] pool on drop.
pub struct ArenaBuf<'a, T> {
    pool: &'a Mutex<Vec<Vec<T>>>,
    buf: Vec<T>,
}

impl<T> ArenaBuf<'_, T> {
    /// The buffer as a mutable vector, for the rare push-style use; the
    /// storage is still recycled on drop.
    pub fn as_vec_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T> Deref for ArenaBuf<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T> DerefMut for ArenaBuf<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T> Drop for ArenaBuf<'_, T> {
    fn drop(&mut self) {
        let mut guard = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        if guard.len() < POOL_CAP {
            guard.push(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_are_zeroed_even_after_reuse() {
        let arena = Arena::new();
        {
            let mut b = arena.take_words(8);
            b.iter_mut().for_each(|w| *w = u64::MAX);
        }
        let b = arena.take_words(8);
        assert!(b.iter().all(|&w| w == 0));
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn reuse_is_a_hit_fresh_is_a_miss() {
        let arena = Arena::new();
        drop(arena.take_words(16));
        let s0 = arena.stats();
        assert_eq!((s0.hits, s0.misses), (0, 1));
        drop(arena.take_words(10)); // fits in the recycled capacity
        let s1 = arena.stats();
        assert_eq!((s1.hits, s1.misses), (1, 1));
        drop(arena.take_words(1000)); // must grow: a miss
        let s2 = arena.stats();
        assert_eq!((s2.hits, s2.misses), (1, 2));
    }

    #[test]
    fn typed_pools_are_independent() {
        let arena = Arena::new();
        drop(arena.take_words(8));
        let i = arena.take_ints(8); // u32 pool is empty: a miss
        assert_eq!(arena.stats().misses, 2);
        assert_eq!(i.len(), 8);
    }

    #[test]
    fn zero_length_take() {
        let arena = Arena::new();
        let b = arena.take_ints(0);
        assert!(b.is_empty());
    }

    #[test]
    fn concurrent_takes_do_not_interfere() {
        let arena = Arena::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..16 {
                        let mut b = arena.take_words(64);
                        b.iter_mut().for_each(|w| *w = 7);
                        assert!(b.iter().all(|&w| w == 7));
                    }
                });
            }
        });
        let s = arena.stats();
        assert_eq!(s.hits + s.misses, 64);
    }
}
