//! Edge-list file IO.
//!
//! Two formats, matching the paper's assumption that factors `A` and `B`
//! arrive "as (unordered) edge lists" read from file:
//!
//! * **Text**: one `u v` pair per line, `#`-prefixed comment lines, blank
//!   lines ignored. The vertex count is `max id + 1` unless a
//!   `# vertices: N` header is present.
//! * **Binary**: little-endian framing via the `bytes` crate —
//!   magic `KRGB`, version `u32`, `n: u64`, `arc_count: u64`, then
//!   `arc_count` pairs of `u64`.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::edge_list::EdgeList;
use crate::{GraphError, Result};

const MAGIC: &[u8; 4] = b"KRGB";
const VERSION: u32 = 1;

/// Parses a text edge list from a reader.
pub fn read_text<R: BufRead>(reader: R) -> Result<EdgeList> {
    let mut arcs = Vec::new();
    let mut max_vertex: Option<u64> = None;
    let mut declared_n: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let comment = comment.trim();
            if let Some(rest) = comment.strip_prefix("vertices:") {
                let n: u64 = rest.trim().parse().map_err(|_| GraphError::Parse {
                    line: line_no,
                    message: format!("bad vertex count header: {comment:?}"),
                })?;
                declared_n = Some(n);
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_vertex(parts.next(), line_no)?;
        let v = parse_vertex(parts.next(), line_no)?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: format!("expected two fields, got more: {trimmed:?}"),
            });
        }
        max_vertex = Some(max_vertex.map_or(u.max(v), |m| m.max(u).max(v)));
        arcs.push((u, v));
    }
    let n = declared_n.unwrap_or_else(|| max_vertex.map_or(0, |m| m + 1));
    EdgeList::from_arcs(n, arcs)
}

fn parse_vertex(field: Option<&str>, line: usize) -> Result<u64> {
    let field = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "missing vertex field".to_string(),
    })?;
    field.parse().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid vertex id: {field:?}"),
    })
}

/// Writes a text edge list (with a `# vertices:` header) to a writer.
pub fn write_text<W: Write>(mut writer: W, graph: &EdgeList) -> Result<()> {
    writeln!(writer, "# vertices: {}", graph.n())?;
    for &(u, v) in graph.arcs() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a text edge list from a file path.
pub fn read_text_file<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    read_text(BufReader::new(File::open(path)?))
}

/// Writes a text edge list to a file path.
pub fn write_text_file<P: AsRef<Path>>(path: P, graph: &EdgeList) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_text(&mut w, graph)?;
    w.flush()?;
    Ok(())
}

/// Serializes an edge list into the binary format.
pub fn encode_binary(graph: &EdgeList) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + 4 + 16 + graph.nnz() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(graph.n());
    buf.put_u64_le(graph.nnz() as u64);
    for &(u, v) in graph.arcs() {
        buf.put_u64_le(u);
        buf.put_u64_le(v);
    }
    buf.freeze()
}

/// Deserializes an edge list from the binary format.
pub fn decode_binary(mut data: &[u8]) -> Result<EdgeList> {
    let bad = |message: &str| GraphError::Parse { line: 0, message: message.to_string() };
    if data.len() < 24 {
        return Err(bad("binary edge list truncated (header)"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic (expected KRGB)"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(bad(&format!("unsupported version {version}")));
    }
    let n = data.get_u64_le();
    let count = data.get_u64_le();
    // Validate the declared count against the bytes actually present
    // *before* any allocation, with overflow-checked arithmetic: a
    // forged `count = u64::MAX` must cost one comparison, not an OOM
    // (and `count * 16` must not wrap into a small number on the way).
    let need = count
        .checked_mul(16)
        .ok_or_else(|| bad("arc count overflows byte length"))?;
    if (data.remaining() as u64) < need {
        return Err(bad("binary edge list truncated (arcs)"));
    }
    if data.remaining() as u64 != need {
        return Err(bad("trailing bytes after arc list"));
    }
    // `count ≤ remaining/16` now, so this capacity is bounded by the
    // input's own size.
    let count = count as usize;
    let mut arcs = Vec::with_capacity(count);
    for _ in 0..count {
        let u = data.get_u64_le();
        let v = data.get_u64_le();
        arcs.push((u, v));
    }
    EdgeList::from_arcs(n, arcs)
}

/// Writes the binary format to a file path.
pub fn write_binary_file<P: AsRef<Path>>(path: P, graph: &EdgeList) -> Result<()> {
    let bytes = encode_binary(graph);
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads the binary format from a file path.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> EdgeList {
        EdgeList::from_arcs(4, vec![(0, 1), (1, 0), (2, 3), (3, 2), (1, 1)]).unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &g).unwrap();
        let parsed = read_text(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn text_comments_and_blanks() {
        let input = "# a comment\n\n0 1\n  1 0  \n# another\n";
        let g = read_text(Cursor::new(input)).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.arcs(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn text_vertex_header_beats_max_id() {
        let input = "# vertices: 10\n0 1\n";
        let g = read_text(Cursor::new(input)).unwrap();
        assert_eq!(g.n(), 10);
    }

    #[test]
    fn text_without_header_infers_n() {
        let g = read_text(Cursor::new("0 7\n")).unwrap();
        assert_eq!(g.n(), 8);
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(read_text(Cursor::new("0 x\n")).is_err());
        assert!(read_text(Cursor::new("0\n")).is_err());
        assert!(read_text(Cursor::new("0 1 2\n")).is_err());
    }

    #[test]
    fn empty_text_is_empty_graph() {
        let g = read_text(Cursor::new("")).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.nnz(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let bytes = encode_binary(&g);
        let parsed = decode_binary(&bytes).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = sample();
        let bytes = encode_binary(&g);
        assert!(decode_binary(&bytes[..10]).is_err());
        let mut broken = bytes.to_vec();
        broken[0] = b'X';
        assert!(decode_binary(&broken).is_err());
        broken = bytes.to_vec();
        broken[4] = 99; // version
        assert!(decode_binary(&broken).is_err());
        broken = bytes.to_vec();
        broken.truncate(bytes.len() - 1);
        assert!(decode_binary(&broken).is_err());
    }

    #[test]
    fn binary_rejects_adversarial_counts_without_allocating() {
        // Header declaring u64::MAX arcs over an empty body: must fail
        // on the length check, not die reserving 2^64·16 bytes.
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.extend_from_slice(&VERSION.to_le_bytes());
        forged.extend_from_slice(&4u64.to_le_bytes()); // n
        forged.extend_from_slice(&u64::MAX.to_le_bytes()); // count
        assert!(decode_binary(&forged).is_err());

        // A count chosen so `count * 16` wraps to a small value: the
        // overflow check must catch it before the comparison lies.
        let wrap_count = (u64::MAX / 16) + 1; // *16 wraps to 0
        forged.truncate(16);
        forged.extend_from_slice(&wrap_count.to_le_bytes());
        assert!(decode_binary(&forged).is_err());
    }

    #[test]
    fn binary_rejects_trailing_bytes() {
        let mut bytes = encode_binary(&sample()).to_vec();
        bytes.push(0);
        assert!(decode_binary(&bytes).is_err());
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("kron_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let tpath = dir.join("g.txt");
        let bpath = dir.join("g.bin");
        write_text_file(&tpath, &g).unwrap();
        write_binary_file(&bpath, &g).unwrap();
        assert_eq!(read_text_file(&tpath).unwrap(), g);
        assert_eq!(read_binary_file(&bpath).unwrap(), g);
    }
}
