//! Out-of-core edge shards: streaming sorted-run spill files and the
//! external-memory CSR build over them.
//!
//! The distributed generator can produce a `C = A ⊗ B` far larger than
//! RAM; this module is the disk tier that makes such a product storable
//! and analyzable on a small box. Three layers:
//!
//! * **Sorted-run shard files** (`KRSH` v1): a versioned, length-prefixed
//!   binary format holding one *sorted* run of arcs. [`ShardWriter`]
//!   streams arcs out through a bounded buffer (enforcing sortedness at
//!   write time); [`ShardReader`] streams them back, validating the
//!   declared count against the actual file length with overflow-checked
//!   arithmetic *before* trusting it — the same adversarial-decode
//!   discipline as [`crate::io::decode_binary`] — and re-enforcing
//!   sortedness and vertex range at read time, so a corrupted shard is
//!   an error, never a panic or an attacker-sized allocation.
//! * **K-way merge** ([`merge_shards`]): merges any number of sorted
//!   runs into one globally sorted, deduplicated arc stream delivered to
//!   a visitor. Resident memory is one read buffer per run plus a
//!   run-count-sized heap — never `O(edges)`.
//! * **CSR builds**: [`CsrGraph::from_shards`] materializes the merged
//!   stream as an in-memory CSR **bit-identical** to
//!   [`CsrGraph::from_edge_list`] over the same arc multiset, with no
//!   intermediate edge list (the 16-byte-per-arc `Vec` never exists);
//!   [`build_external_csr`] goes fully out-of-core, writing a CSR-layout
//!   file (`KRSC` v1, offsets then targets) in two merge passes so peak
//!   resident memory is `O(n + run buffers)` regardless of the edge
//!   count. [`ExternalCsr`] reads that file back — whole (for
//!   validation-scale equality checks) or row-at-a-time / degree-stream
//!   (for beyond-RAM analytics).
//!
//! Spill and merge volumes are mirrored into `kron-obs` counters
//! (`shard.spilled_arcs`, `shard.merged_arcs`,
//! `shard.merge_duplicates_discarded`, …) so an [`ObsReport`] covers the
//! disk tier alongside the kernels.
//!
//! [`ObsReport`]: ../../kron_obs/report/struct.ObsReport.html

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::csr::CsrGraph;
use crate::{Arc, GraphError, Result};

/// Magic bytes of a sorted-run shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"KRSH";
/// Current shard format version.
pub const SHARD_VERSION: u32 = 1;
/// Magic bytes of an external CSR file.
pub const CSR_MAGIC: &[u8; 4] = b"KRSC";
/// Current external CSR format version.
pub const CSR_VERSION: u32 = 1;

/// Default IO buffer capacity for shard readers and writers (bytes).
pub const DEFAULT_IO_BUF: usize = 64 * 1024;

/// Count placeholder written at create time; a shard dropped before
/// [`ShardWriter::finish`] keeps it, and every reader rejects it (no file
/// can be long enough), so half-written shards can never be merged.
const UNFINISHED: u64 = u64::MAX;

fn corrupt(path: &Path, message: impl std::fmt::Display) -> GraphError {
    GraphError::Parse { line: 0, message: format!("{}: {message}", path.display()) }
}

/// Summary of one finished shard run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// File the run was written to.
    pub path: PathBuf,
    /// Vertex-universe size stamped in the header.
    pub n: u64,
    /// Arcs in the run.
    pub arcs: u64,
}

/// Streaming writer of one sorted run.
///
/// Arcs must be pushed in non-decreasing `(source, target)` order —
/// enforced per push, because the merge's correctness rests on it. The
/// header's arc count is patched in by [`ShardWriter::finish`]; until
/// then the file carries a poisoned count no reader accepts.
#[derive(Debug)]
pub struct ShardWriter {
    out: BufWriter<File>,
    path: PathBuf,
    n: u64,
    arcs: u64,
    last: Option<Arc>,
}

impl ShardWriter {
    /// Creates a shard over a universe of `n` vertices with the default
    /// IO buffer.
    pub fn create<P: AsRef<Path>>(path: P, n: u64) -> Result<Self> {
        Self::with_buffer(path, n, DEFAULT_IO_BUF)
    }

    /// Creates a shard with an explicit IO buffer capacity — the only
    /// resident memory the writer holds.
    pub fn with_buffer<P: AsRef<Path>>(path: P, n: u64, buf_bytes: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut out = BufWriter::with_capacity(buf_bytes.max(32), File::create(&path)?);
        out.write_all(SHARD_MAGIC)?;
        out.write_all(&SHARD_VERSION.to_le_bytes())?;
        out.write_all(&n.to_le_bytes())?;
        out.write_all(&UNFINISHED.to_le_bytes())?;
        Ok(ShardWriter { out, path, n, arcs: 0, last: None })
    }

    /// Appends one arc; must be `>=` the previous arc and in `0..n`.
    pub fn push(&mut self, u: u64, v: u64) -> Result<()> {
        if u >= self.n || v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u.max(v), n: self.n });
        }
        if let Some(last) = self.last {
            if (u, v) < last {
                return Err(corrupt(
                    &self.path,
                    format!("arc ({u},{v}) pushed after {last:?} — runs must be sorted"),
                ));
            }
        }
        self.last = Some((u, v));
        self.out.write_all(&u.to_le_bytes())?;
        self.out.write_all(&v.to_le_bytes())?;
        self.arcs += 1;
        Ok(())
    }

    /// Arcs pushed so far.
    pub fn arcs(&self) -> u64 {
        self.arcs
    }

    /// Flushes, patches the header's arc count, and returns the run
    /// summary. Dropping a writer without calling this leaves the file
    /// unreadable by design.
    pub fn finish(mut self) -> Result<ShardInfo> {
        self.out.flush()?;
        let file = self.out.get_mut();
        file.seek(SeekFrom::Start(16))?;
        file.write_all(&self.arcs.to_le_bytes())?;
        file.flush()?;
        kron_obs::counter!("shard.spilled_runs").add(1);
        kron_obs::counter!("shard.spilled_arcs").add(self.arcs);
        Ok(ShardInfo { path: self.path, n: self.n, arcs: self.arcs })
    }
}

/// Streaming reader of one sorted run; validates framing at open and
/// ordering/range per arc, through a bounded read buffer.
#[derive(Debug)]
pub struct ShardReader {
    input: BufReader<File>,
    path: PathBuf,
    n: u64,
    total: u64,
    remaining: u64,
    last: Option<Arc>,
}

impl ShardReader {
    /// Opens a shard with the default IO buffer.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::with_buffer(path, DEFAULT_IO_BUF)
    }

    /// Opens a shard with an explicit read-buffer capacity — the only
    /// resident memory the reader holds.
    ///
    /// The declared arc count is validated against the real file length
    /// (overflow-checked, trailing bytes rejected) **before** anything is
    /// believed, so a forged header costs one comparison, not an OOM.
    pub fn with_buffer<P: AsRef<Path>>(path: P, buf_bytes: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        let mut input = BufReader::with_capacity(buf_bytes.max(32), file);
        let mut header = [0u8; 24];
        if len < 24 {
            return Err(corrupt(&path, "shard truncated (header)"));
        }
        input.read_exact(&mut header)?;
        if &header[0..4] != SHARD_MAGIC {
            return Err(corrupt(&path, "bad magic (expected KRSH)"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != SHARD_VERSION {
            return Err(corrupt(&path, format!("unsupported shard version {version}")));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let total = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let need = total
            .checked_mul(16)
            .and_then(|b| b.checked_add(24))
            .ok_or_else(|| corrupt(&path, "arc count overflows byte length"))?;
        if len < need {
            return Err(corrupt(&path, "shard truncated (arcs)"));
        }
        if len > need {
            return Err(corrupt(&path, "trailing bytes after arc run"));
        }
        Ok(ShardReader { input, path, n, total, remaining: total, last: None })
    }

    /// Vertex-universe size stamped in the header.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Total arcs declared by the (validated) header.
    pub fn arcs_total(&self) -> u64 {
        self.total
    }

    /// Next arc, or `None` at end of run. Errors on IO failure, an
    /// out-of-range vertex, or an ordering violation — corruption in the
    /// payload surfaces here instead of corrupting a merge.
    pub fn next_arc(&mut self) -> Result<Option<Arc>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut buf = [0u8; 16];
        self.input.read_exact(&mut buf)?;
        let u = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let v = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        if u >= self.n || v >= self.n {
            return Err(corrupt(&self.path, format!("arc ({u},{v}) out of range (n={})", self.n)));
        }
        if let Some(last) = self.last {
            if (u, v) < last {
                return Err(corrupt(
                    &self.path,
                    format!("arc ({u},{v}) after {last:?} — run not sorted"),
                ));
            }
        }
        self.last = Some((u, v));
        self.remaining -= 1;
        Ok(Some((u, v)))
    }
}

/// Accounting of one merge pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Runs merged.
    pub runs: usize,
    /// Unique arcs emitted.
    pub arcs_out: u64,
    /// Duplicate arcs discarded (within or across runs).
    pub duplicates_discarded: u64,
}

/// K-way merges sorted runs into one sorted, deduplicated arc stream,
/// delivered to `emit` in strictly increasing `(source, target)` order.
///
/// All runs must agree on `n`. Resident memory: the readers' bounded
/// buffers plus a heap of one head per run.
pub fn merge_shards<F: FnMut(u64, u64)>(
    mut readers: Vec<ShardReader>,
    mut emit: F,
) -> Result<MergeStats> {
    let mut stats = MergeStats { runs: readers.len(), ..MergeStats::default() };
    if let Some(first) = readers.first() {
        let n = first.n();
        for r in &readers {
            if r.n() != n {
                return Err(corrupt(
                    &r.path,
                    format!("shard n={} disagrees with sibling n={n}", r.n()),
                ));
            }
        }
    }
    // Min-heap of run heads via Reverse ordering.
    let mut heap: BinaryHeap<std::cmp::Reverse<(Arc, usize)>> =
        BinaryHeap::with_capacity(readers.len());
    for (idx, reader) in readers.iter_mut().enumerate() {
        if let Some(arc) = reader.next_arc()? {
            heap.push(std::cmp::Reverse((arc, idx)));
        }
    }
    let mut last: Option<Arc> = None;
    while let Some(std::cmp::Reverse((arc, idx))) = heap.pop() {
        if let Some(next) = readers[idx].next_arc()? {
            heap.push(std::cmp::Reverse((next, idx)));
        }
        if last == Some(arc) {
            stats.duplicates_discarded += 1;
        } else {
            last = Some(arc);
            stats.arcs_out += 1;
            emit(arc.0, arc.1);
        }
    }
    kron_obs::counter!("shard.merged_runs").add(stats.runs as u64);
    kron_obs::counter!("shard.merged_arcs").add(stats.arcs_out);
    kron_obs::counter!("shard.merge_duplicates_discarded").add(stats.duplicates_discarded);
    Ok(stats)
}

fn open_all<P: AsRef<Path>>(paths: &[P], buf_bytes: usize) -> Result<Vec<ShardReader>> {
    paths.iter().map(|p| ShardReader::with_buffer(p, buf_bytes)).collect()
}

impl CsrGraph {
    /// External-memory CSR build: k-way merges the sorted shard runs at
    /// `paths` straight into CSR arrays — **bit-identical** to
    /// [`CsrGraph::from_edge_list`] over the union of the runs' arcs, but
    /// the 16-byte-per-arc edge list and the counting-sort scratch never
    /// exist. Transient memory beyond the returned CSR is one `buf_bytes`
    /// read buffer per run plus the merge heap.
    ///
    /// `n` comes from the shard headers (which must agree). An empty
    /// `paths` slice is rejected — there is no `n` to build over.
    pub fn from_shards<P: AsRef<Path>>(paths: &[P], buf_bytes: usize) -> Result<CsrGraph> {
        let _span = kron_obs::span::enter("shard/from_shards");
        let readers = open_all(paths, buf_bytes)?;
        let first = readers
            .first()
            .ok_or_else(|| corrupt(Path::new("<no shards>"), "from_shards needs >= 1 run"))?;
        let n = first.n();
        // Upper bound (duplicates only shrink it): reserving exactly once
        // keeps the peak at one targets array, no doubling.
        let declared: u64 = readers.iter().map(ShardReader::arcs_total).sum();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets: Vec<u64> = Vec::with_capacity(declared as usize);
        offsets.push(0usize);
        let mut row = 0u64;
        merge_shards(readers, |u, v| {
            // Arcs arrive sorted by (u, v); close out rows up to u.
            while row < u {
                offsets.push(targets.len());
                row += 1;
            }
            targets.push(v);
        })?;
        while row < n {
            offsets.push(targets.len());
            row += 1;
        }
        Ok(CsrGraph::from_sorted_parts(n, offsets, targets))
    }
}

/// Accounting of one external CSR build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExternalCsrStats {
    /// Unique arcs written.
    pub arcs: u64,
    /// Duplicates discarded by the merge.
    pub duplicates_discarded: u64,
    /// Bytes of the emitted CSR file.
    pub bytes: u64,
}

/// Fully out-of-core CSR build: merges the sorted runs at `paths` twice —
/// pass one counts per-row degrees, pass two streams targets — and writes
/// a `KRSC` CSR-layout file (header, `n + 1` offsets, targets) to `out`.
///
/// Peak resident memory is the `(n + 1)`-entry degree table plus the
/// bounded run buffers: independent of the arc count, which only ever
/// exists on disk. This is the build that makes a beyond-RAM `C`
/// analyzable.
pub fn build_external_csr<P: AsRef<Path>>(
    paths: &[P],
    out: &Path,
    buf_bytes: usize,
) -> Result<ExternalCsrStats> {
    let _span = kron_obs::span::enter("shard/build_external_csr");
    let readers = open_all(paths, buf_bytes)?;
    let first = readers
        .first()
        .ok_or_else(|| corrupt(Path::new("<no shards>"), "external build needs >= 1 run"))?;
    let n = first.n();
    // Pass 1: degree counts (the only O(n) state of the build).
    let mut counts = vec![0u64; n as usize + 1];
    let pass1 = merge_shards(readers, |u, _| counts[u as usize + 1] += 1)?;
    for i in 0..n as usize {
        counts[i + 1] += counts[i];
    }
    let mut writer = BufWriter::with_capacity(buf_bytes.max(32), File::create(out)?);
    writer.write_all(CSR_MAGIC)?;
    writer.write_all(&CSR_VERSION.to_le_bytes())?;
    writer.write_all(&n.to_le_bytes())?;
    writer.write_all(&pass1.arcs_out.to_le_bytes())?;
    for offset in &counts {
        writer.write_all(&offset.to_le_bytes())?;
    }
    // Pass 2: stream targets in merged order, which is exactly CSR order.
    let readers = open_all(paths, buf_bytes)?;
    let mut written = 0u64;
    let pass2 = merge_shards(readers, |_, v| {
        written += 1;
        // BufWriter error surfaces at flush; merge visitors are infallible.
        let _ = writer.write_all(&v.to_le_bytes());
    })?;
    if pass2 != pass1 {
        return Err(corrupt(out, "shards changed between merge passes"));
    }
    writer.flush()?;
    let bytes = 24 + (n + 1) * 8 + pass1.arcs_out * 8;
    kron_obs::counter!("shard.external_csr_arcs").add(pass1.arcs_out);
    kron_obs::counter!("shard.external_csr_bytes").add(bytes);
    Ok(ExternalCsrStats {
        arcs: pass1.arcs_out,
        duplicates_discarded: pass1.duplicates_discarded,
        bytes,
    })
}

/// Reader over a `KRSC` external CSR file: validated header, O(1)-memory
/// degree/row access by seek, and a full [`ExternalCsr::load`] for
/// validation-scale equality checks.
#[derive(Debug)]
pub struct ExternalCsr {
    file: File,
    path: PathBuf,
    n: u64,
    arcs: u64,
}

impl ExternalCsr {
    /// Opens and validates an external CSR file. The declared `n` and arc
    /// count must reproduce the file length exactly (overflow-checked), so
    /// truncation, forged headers, and trailing garbage are all rejected
    /// before any allocation.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let len = file.metadata()?.len();
        if len < 24 {
            return Err(corrupt(&path, "external CSR truncated (header)"));
        }
        let mut header = [0u8; 24];
        file.read_exact(&mut header)?;
        if &header[0..4] != CSR_MAGIC {
            return Err(corrupt(&path, "bad magic (expected KRSC)"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != CSR_VERSION {
            return Err(corrupt(&path, format!("unsupported CSR version {version}")));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let arcs = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let need = n
            .checked_add(1)
            .and_then(|rows| rows.checked_mul(8))
            .and_then(|o| arcs.checked_mul(8).and_then(|t| o.checked_add(t)))
            .and_then(|body| body.checked_add(24))
            .ok_or_else(|| corrupt(&path, "header sizes overflow byte length"))?;
        if len != need {
            return Err(corrupt(
                &path,
                format!("file length {len} does not match declared sizes ({need})"),
            ));
        }
        Ok(ExternalCsr { file, path, n, arcs })
    }

    /// Vertex count.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Stored arc count.
    pub fn arc_count(&self) -> u64 {
        self.arcs
    }

    fn offset_pair(&mut self, p: u64) -> Result<(u64, u64)> {
        if p >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: p, n: self.n });
        }
        self.file.seek(SeekFrom::Start(24 + p * 8))?;
        let mut buf = [0u8; 16];
        self.file.read_exact(&mut buf)?;
        let start = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let end = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        if start > end || end > self.arcs {
            return Err(corrupt(&self.path, format!("row {p} offsets [{start},{end}) corrupt")));
        }
        Ok((start, end))
    }

    /// Degree of `p` — two offset reads, O(1) memory.
    pub fn degree(&mut self, p: u64) -> Result<u64> {
        let (start, end) = self.offset_pair(p)?;
        Ok(end - start)
    }

    /// Neighbor row of `p` — memory proportional to that row alone.
    pub fn row(&mut self, p: u64) -> Result<Vec<u64>> {
        let (start, end) = self.offset_pair(p)?;
        let targets_base = 24 + (self.n + 1) * 8;
        self.file.seek(SeekFrom::Start(targets_base + start * 8))?;
        let mut row = vec![0u64; (end - start) as usize];
        let mut buf = [0u8; 8];
        for slot in &mut row {
            self.file.read_exact(&mut buf)?;
            *slot = u64::from_le_bytes(buf);
        }
        Ok(row)
    }

    /// Streams every vertex's degree in id order through a bounded
    /// buffer — the beyond-RAM degree scan.
    pub fn for_each_degree<F: FnMut(u64, u64)>(&mut self, mut f: F) -> Result<()> {
        self.file.seek(SeekFrom::Start(24))?;
        let mut reader = BufReader::with_capacity(DEFAULT_IO_BUF, &self.file);
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        let mut prev = u64::from_le_bytes(buf);
        for p in 0..self.n {
            reader.read_exact(&mut buf)?;
            let next = u64::from_le_bytes(buf);
            if next < prev {
                return Err(corrupt(&self.path, format!("offsets not monotone at row {p}")));
            }
            f(p, next - prev);
            prev = next;
        }
        Ok(())
    }

    /// Loads the whole file as an in-memory [`CsrGraph`] — validation-
    /// scale only; this is the one method that allocates O(arcs).
    pub fn load(&mut self) -> Result<CsrGraph> {
        self.file.seek(SeekFrom::Start(24))?;
        let mut reader = BufReader::with_capacity(DEFAULT_IO_BUF, &self.file);
        let mut buf = [0u8; 8];
        let mut offsets = Vec::with_capacity(self.n as usize + 1);
        for row in 0..=self.n {
            reader.read_exact(&mut buf)?;
            let offset = u64::from_le_bytes(buf);
            if offset > self.arcs || offsets.last().is_some_and(|&o| (o as u64) > offset) {
                return Err(corrupt(&self.path, format!("offsets corrupt at row {row}")));
            }
            offsets.push(offset as usize);
        }
        if offsets.last() != Some(&(self.arcs as usize)) {
            return Err(corrupt(&self.path, "final offset disagrees with arc count"));
        }
        let mut targets = Vec::with_capacity(self.arcs as usize);
        for _ in 0..self.arcs {
            reader.read_exact(&mut buf)?;
            let v = u64::from_le_bytes(buf);
            if v >= self.n {
                return Err(corrupt(&self.path, format!("target {v} out of range")));
            }
            targets.push(v);
        }
        Ok(CsrGraph::from_sorted_parts(self.n, offsets, targets))
    }
}

/// Sorts `arcs` and spills them as one run at `path` (helper for run
/// buffers accumulated in arrival order).
pub fn spill_sorted_run(path: &Path, n: u64, arcs: &mut Vec<Arc>) -> Result<ShardInfo> {
    arcs.sort_unstable();
    let mut writer = ShardWriter::create(path, n)?;
    for &(u, v) in arcs.iter() {
        writer.push(u, v)?;
    }
    arcs.clear();
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("kron_shard_unit").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_run(path: &Path, n: u64, arcs: &[Arc]) -> ShardInfo {
        let mut w = ShardWriter::create(path, n).unwrap();
        for &(u, v) in arcs {
            w.push(u, v).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_single_run() {
        let d = dir("roundtrip");
        let path = d.join("run.krsh");
        let arcs = vec![(0, 1), (0, 2), (1, 0), (3, 3)];
        let info = write_run(&path, 4, &arcs);
        assert_eq!(info.arcs, 4);
        let mut reader = ShardReader::open(&path).unwrap();
        assert_eq!(reader.n(), 4);
        let mut back = Vec::new();
        while let Some(arc) = reader.next_arc().unwrap() {
            back.push(arc);
        }
        assert_eq!(back, arcs);
    }

    #[test]
    fn writer_rejects_unsorted_and_out_of_range() {
        let d = dir("writer_rejects");
        let mut w = ShardWriter::create(d.join("bad.krsh"), 4).unwrap();
        w.push(2, 2).unwrap();
        assert!(w.push(1, 0).is_err(), "descending arc accepted");
        assert!(w.push(2, 9).is_err(), "out-of-range target accepted");
    }

    #[test]
    fn unfinished_shard_is_rejected() {
        let d = dir("unfinished");
        let path = d.join("dropped.krsh");
        {
            let mut w = ShardWriter::create(&path, 4).unwrap();
            w.push(0, 1).unwrap();
            // Dropped without finish: count stays poisoned.
        }
        assert!(ShardReader::open(&path).is_err());
    }

    #[test]
    fn reader_rejects_framing_corruption() {
        let d = dir("framing");
        let path = d.join("run.krsh");
        write_run(&path, 4, &[(0, 1), (1, 2)]);
        let good = std::fs::read(&path).unwrap();

        // Truncated header.
        std::fs::write(&path, &good[..10]).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Unsupported version.
        let mut bad = good.clone();
        bad[4] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Truncated payload.
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Trailing byte.
        let mut bad = good.clone();
        bad.push(0);
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardReader::open(&path).is_err());
    }

    #[test]
    fn reader_rejects_forged_counts_without_allocating() {
        let d = dir("forged");
        let path = d.join("forged.krsh");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(ShardReader::open(&path).is_err(), "u64::MAX count accepted");
        // A count whose * 16 wraps to something tiny.
        bytes.truncate(16);
        bytes.extend_from_slice(&((u64::MAX / 16) + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(ShardReader::open(&path).is_err(), "wrapping count accepted");
    }

    #[test]
    fn reader_rejects_unsorted_payload() {
        let d = dir("unsorted");
        let path = d.join("run.krsh");
        // Hand-build a shard whose payload is out of order.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        for (u, v) in [(2u64, 0u64), (1, 0)] {
            bytes.extend_from_slice(&u.to_le_bytes());
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = ShardReader::open(&path).unwrap();
        assert!(reader.next_arc().is_ok());
        assert!(reader.next_arc().is_err(), "ordering violation accepted");
    }

    #[test]
    fn merge_dedups_across_runs() {
        let d = dir("merge");
        let p1 = d.join("a.krsh");
        let p2 = d.join("b.krsh");
        write_run(&p1, 5, &[(0, 1), (2, 3), (4, 4)]);
        write_run(&p2, 5, &[(0, 1), (1, 0), (2, 3)]);
        let readers = vec![ShardReader::open(&p1).unwrap(), ShardReader::open(&p2).unwrap()];
        let mut merged = Vec::new();
        let stats = merge_shards(readers, |u, v| merged.push((u, v))).unwrap();
        assert_eq!(merged, vec![(0, 1), (1, 0), (2, 3), (4, 4)]);
        assert_eq!(stats.arcs_out, 4);
        assert_eq!(stats.duplicates_discarded, 2);
        assert_eq!(stats.runs, 2);
    }

    #[test]
    fn merge_rejects_disagreeing_universes() {
        let d = dir("merge_n");
        let p1 = d.join("a.krsh");
        let p2 = d.join("b.krsh");
        write_run(&p1, 5, &[(0, 1)]);
        write_run(&p2, 6, &[(0, 1)]);
        let readers = vec![ShardReader::open(&p1).unwrap(), ShardReader::open(&p2).unwrap()];
        assert!(merge_shards(readers, |_, _| {}).is_err());
    }

    #[test]
    fn from_shards_matches_from_edge_list() {
        let d = dir("from_shards");
        let arcs = vec![(0u64, 3u64), (1, 1), (2, 0), (3, 2), (0, 1), (1, 1)];
        let list = EdgeList::from_arcs(4, arcs.clone()).unwrap();
        let reference = CsrGraph::from_edge_list(&list);
        // Two interleaved sorted runs with a duplicate across them.
        let mut run1 = vec![arcs[0], arcs[2], arcs[4]];
        let mut run2 = vec![arcs[1], arcs[3], arcs[5], (0, 3)];
        run1.sort_unstable();
        run2.sort_unstable();
        let p1 = d.join("r1.krsh");
        let p2 = d.join("r2.krsh");
        write_run(&p1, 4, &run1);
        write_run(&p2, 4, &run2);
        let built = CsrGraph::from_shards(&[&p1, &p2], 1024).unwrap();
        assert_eq!(built, reference);
        assert_eq!(built.offsets(), reference.offsets());
        assert_eq!(built.targets(), reference.targets());
    }

    #[test]
    fn from_shards_needs_a_run() {
        let empty: [&Path; 0] = [];
        assert!(CsrGraph::from_shards(&empty, 1024).is_err());
    }

    #[test]
    fn external_csr_roundtrip_and_streaming() {
        let d = dir("external");
        let arcs = vec![(0u64, 1u64), (0, 2), (1, 0), (3, 0), (3, 3)];
        let list = EdgeList::from_arcs(4, arcs.clone()).unwrap();
        let reference = CsrGraph::from_edge_list(&list);
        let mut sorted = arcs.clone();
        sorted.sort_unstable();
        let run = d.join("run.krsh");
        write_run(&run, 4, &sorted);
        let out = d.join("c.krsc");
        let stats = build_external_csr(&[&run], &out, 1024).unwrap();
        assert_eq!(stats.arcs, 5);
        assert_eq!(stats.duplicates_discarded, 0);
        assert_eq!(stats.bytes, std::fs::metadata(&out).unwrap().len());

        let mut ext = ExternalCsr::open(&out).unwrap();
        assert_eq!(ext.n(), 4);
        assert_eq!(ext.arc_count(), 5);
        assert_eq!(ext.load().unwrap(), reference);
        for p in 0..4u64 {
            assert_eq!(ext.degree(p).unwrap(), reference.degree(p), "degree({p})");
            assert_eq!(ext.row(p).unwrap(), reference.neighbors(p), "row({p})");
        }
        let mut degrees = Vec::new();
        ext.for_each_degree(|_, deg| degrees.push(deg)).unwrap();
        assert_eq!(degrees, reference.degrees());
        assert!(ext.degree(99).is_err());
    }

    #[test]
    fn external_csr_rejects_corruption() {
        let d = dir("external_bad");
        let run = d.join("run.krsh");
        write_run(&run, 3, &[(0, 1), (2, 2)]);
        let out = d.join("c.krsc");
        build_external_csr(&[&run], &out, 1024).unwrap();
        let good = std::fs::read(&out).unwrap();

        std::fs::write(&out, &good[..20]).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "truncated header accepted");
        let mut bad = good.clone();
        bad[0] = b'Z';
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "bad magic accepted");
        let mut bad = good.clone();
        bad[4] = 7;
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "bad version accepted");
        std::fs::write(&out, &good[..good.len() - 8]).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "truncated targets accepted");
        let mut bad = good.clone();
        bad.push(1);
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "trailing byte accepted");
        // Forged n that would overflow the length computation.
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "overflowing n accepted");
    }

    #[test]
    fn spill_sorted_run_sorts_and_clears() {
        let d = dir("spill_helper");
        let path = d.join("run.krsh");
        let mut buf = vec![(3u64, 0u64), (0, 1), (2, 2)];
        let info = spill_sorted_run(&path, 4, &mut buf).unwrap();
        assert!(buf.is_empty(), "run buffer must be recycled empty");
        assert_eq!(info.arcs, 3);
        let mut reader = ShardReader::open(&path).unwrap();
        let mut back = Vec::new();
        while let Some(arc) = reader.next_arc().unwrap() {
            back.push(arc);
        }
        assert_eq!(back, vec![(0, 1), (2, 2), (3, 0)]);
    }
}
