//! Out-of-core edge shards: streaming sorted-run spill files and the
//! external-memory CSR build over them.
//!
//! The distributed generator can produce a `C = A ⊗ B` far larger than
//! RAM; this module is the disk tier that makes such a product storable
//! and analyzable on a small box. Three layers:
//!
//! * **Sorted-run shard files** (`KRSH`): a versioned, length-prefixed
//!   binary format holding one *sorted* run of arcs. Two wire versions
//!   coexist: **v1** stores 16 fixed bytes per arc; **v2** delta-encodes
//!   `(row-delta, target-delta)` as canonical LEB128 varints over the
//!   already-sorted stream (~2–4 bytes/arc) and appends a per-row
//!   `(row, count)` footer sidecar that lets the external build predict
//!   the degree table without a counting pass. [`ShardWriter`] streams
//!   arcs out through a bounded buffer (enforcing sortedness at write
//!   time); [`ShardReader`] streams them back a *block* at a time,
//!   validating declared lengths with overflow-checked arithmetic
//!   *before* trusting them — the same adversarial-decode discipline as
//!   [`crate::io::decode_binary`] — and re-enforcing sortedness and
//!   vertex range per arc, so a corrupted shard (truncated varint,
//!   overlong encoding, forged count, bit flip) is an error, never a
//!   panic or an attacker-sized allocation.
//! * **K-way merge** ([`merge_shards`] / [`try_merge_shards`]): a
//!   tournament (loser-tree) merge of any number of sorted runs into one
//!   globally sorted, deduplicated arc stream delivered to a visitor —
//!   `log2(k)` comparisons per arc against decoded blocks, no heap churn
//!   and no per-arc syscalls. The fallible variant propagates visitor
//!   errors at the failing arc. Resident memory is one bounded
//!   buffer per run plus the `O(k)` tree — never `O(edges)`.
//! * **CSR builds**: [`CsrGraph::from_shards`] materializes the merged
//!   stream as an in-memory CSR **bit-identical** to
//!   [`CsrGraph::from_edge_list`] over the same arc multiset;
//!   [`build_external_csr`] goes fully out-of-core in **one** merge
//!   pass: v2 footers predict the offset table, the pass verifies every
//!   row boundary against the prediction while appending targets, and
//!   only a divergence (v1 runs, cross-run duplicates, forged footers)
//!   triggers an `O(n)` seek-back rewrite — output byte-identical to the
//!   reference two-pass build ([`build_external_csr_two_pass`]) in every
//!   case. [`ExternalCsr`] reads that file back — whole (for
//!   validation-scale equality checks), row-at-a-time through an
//!   optional bounded block cache (seeded-eviction, the
//!   `kron-serve` row-cache design), or via streaming visitors
//!   ([`ExternalCsr::for_each_degree`], [`ExternalCsr::for_each_row`])
//!   for beyond-RAM analytics.
//!
//! Spill and merge volumes are mirrored into `kron-obs` counters
//! (`shard.spilled_arcs`, `shard.merged_arcs`,
//! `shard.merge_duplicates_discarded`, …) so an [`ObsReport`] covers the
//! disk tier alongside the kernels.
//!
//! [`ObsReport`]: ../../kron_obs/report/struct.ObsReport.html

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::csr::CsrGraph;
use crate::{Arc, GraphError, Result};

/// Magic bytes of a sorted-run shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"KRSH";
/// Wire version of the fixed-width (16 bytes/arc) shard format.
pub const SHARD_V1_VERSION: u32 = 1;
/// Wire version of the delta-varint shard format with a row footer.
pub const SHARD_V2_VERSION: u32 = 2;
/// Magic bytes of an external CSR file.
pub const CSR_MAGIC: &[u8; 4] = b"KRSC";
/// Current external CSR format version.
pub const CSR_VERSION: u32 = 1;

/// Default IO buffer capacity for shard readers and writers (bytes).
pub const DEFAULT_IO_BUF: usize = 64 * 1024;

/// Longest canonical LEB128 encoding of a `u64`.
pub const MAX_VARINT_BYTES: usize = 10;

const V1_HEADER: u64 = 24;
const V2_HEADER: u64 = 40;

/// Placeholder written at create time for the count (v1) and the
/// count/payload/footer lengths (v2); a shard dropped before
/// [`ShardWriter::finish`] keeps it, and every reader rejects it (the
/// overflow-checked length reconstruction fails), so half-written shards
/// can never be merged.
const UNFINISHED: u64 = u64::MAX;

fn corrupt(path: &Path, message: impl std::fmt::Display) -> GraphError {
    GraphError::Parse { line: 0, message: format!("{}: {message}", path.display()) }
}

/// Shard wire format selector. v2 (delta varints + row footer) is the
/// default; v1 remains fully readable and writable for conformance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardVersion {
    /// Fixed-width 16-bytes-per-arc runs (PR 8 format).
    V1,
    /// Delta-encoded LEB128 runs with a per-row count footer.
    #[default]
    V2,
}

impl ShardVersion {
    /// The `u32` stamped in the file header.
    pub fn wire(self) -> u32 {
        match self {
            ShardVersion::V1 => SHARD_V1_VERSION,
            ShardVersion::V2 => SHARD_V2_VERSION,
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical LEB128 varints
// ---------------------------------------------------------------------------

/// Outcome of decoding one varint from the front of a byte window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Varint {
    /// A complete, canonical varint of `len` bytes.
    Value {
        /// Decoded value.
        value: u64,
        /// Encoded length in bytes.
        len: usize,
    },
    /// The window ended mid-varint; refill the window and retry.
    NeedMore,
}

/// Appends the canonical LEB128 encoding of `value` to `out` and returns
/// the encoded length (1..=[`MAX_VARINT_BYTES`]).
pub fn encode_varint(value: u64, out: &mut Vec<u8>) -> usize {
    let mut v = value;
    let mut len = 0usize;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        len += 1;
        if v == 0 {
            out.push(byte);
            return len;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one canonical LEB128 varint from the front of `bytes`.
///
/// Rejections (the encoding is bijective, so every value has exactly one
/// accepted spelling): encodings longer than [`MAX_VARINT_BYTES`], a
/// tenth byte carrying bits beyond 2^64 or a continuation flag, and
/// overlong encodings whose final group is zero. A window that ends
/// before the terminating byte yields [`Varint::NeedMore`], never an
/// out-of-bounds read.
pub fn decode_varint(bytes: &[u8]) -> std::result::Result<Varint, &'static str> {
    let mut value = 0u64;
    for (i, &byte) in bytes.iter().enumerate().take(MAX_VARINT_BYTES) {
        if i == MAX_VARINT_BYTES - 1 && byte > 1 {
            return Err("varint carries bits beyond 64 or overlong continuation");
        }
        let group = (byte & 0x7f) as u64;
        value |= group << (7 * i as u32);
        if byte & 0x80 == 0 {
            if i > 0 && group == 0 {
                return Err("overlong varint (zero final group)");
            }
            return Ok(Varint::Value { value, len: i + 1 });
        }
    }
    if bytes.len() < MAX_VARINT_BYTES {
        Ok(Varint::NeedMore)
    } else {
        Err("varint longer than 10 bytes")
    }
}

// ---------------------------------------------------------------------------
// Header parsing shared by the reader and the footer scan
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct ShardHeader {
    version: ShardVersion,
    n: u64,
    count: u64,
    /// Arc payload bytes (v1: `count * 16`).
    payload_len: u64,
    /// Footer bytes (v1: 0).
    footer_len: u64,
    /// Bytes before the payload.
    header_len: u64,
}

/// Reads and fully validates a shard header from `file`: magic, version,
/// and an overflow-checked reconstruction of the exact file length from
/// the declared sizes — truncation, trailing garbage, forged counts and
/// the [`UNFINISHED`] placeholders are all rejected before any
/// allocation or payload read.
fn read_shard_header(file: &mut File, path: &Path) -> Result<ShardHeader> {
    let len = file.metadata()?.len();
    if len < V1_HEADER {
        return Err(corrupt(path, "shard truncated (header)"));
    }
    let mut fixed = [0u8; 8];
    file.read_exact(&mut fixed)?;
    if &fixed[0..4] != SHARD_MAGIC {
        return Err(corrupt(path, "bad magic (expected KRSH)"));
    }
    let version = u32::from_le_bytes(fixed[4..8].try_into().expect("4 bytes"));
    match version {
        SHARD_V1_VERSION => {
            let mut rest = [0u8; 16];
            file.read_exact(&mut rest)?;
            let n = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
            let count = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
            let payload_len = count
                .checked_mul(16)
                .ok_or_else(|| corrupt(path, "arc count overflows byte length"))?;
            let need = payload_len
                .checked_add(V1_HEADER)
                .ok_or_else(|| corrupt(path, "arc count overflows byte length"))?;
            if len < need {
                return Err(corrupt(path, "shard truncated (arcs)"));
            }
            if len > need {
                return Err(corrupt(path, "trailing bytes after arc run"));
            }
            Ok(ShardHeader {
                version: ShardVersion::V1,
                n,
                count,
                payload_len,
                footer_len: 0,
                header_len: V1_HEADER,
            })
        }
        SHARD_V2_VERSION => {
            if len < V2_HEADER {
                return Err(corrupt(path, "shard truncated (v2 header)"));
            }
            let mut rest = [0u8; 32];
            file.read_exact(&mut rest)?;
            let n = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
            let count = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
            let payload_len = u64::from_le_bytes(rest[16..24].try_into().expect("8 bytes"));
            let footer_len = u64::from_le_bytes(rest[24..32].try_into().expect("8 bytes"));
            let need = payload_len
                .checked_add(footer_len)
                .and_then(|b| b.checked_add(V2_HEADER))
                .ok_or_else(|| corrupt(path, "declared sizes overflow byte length"))?;
            if len != need {
                return Err(corrupt(
                    path,
                    format!("file length {len} does not match declared sizes ({need})"),
                ));
            }
            if count == 0 {
                if payload_len != 0 || footer_len != 0 {
                    return Err(corrupt(path, "empty run with non-empty payload or footer"));
                }
            } else {
                // Each arc encodes as 2..=20 payload bytes; the footer
                // holds 1..=count entries of 2..=20 bytes. A forged count
                // dies here for the cost of two multiplications.
                let min_payload = count
                    .checked_mul(2)
                    .ok_or_else(|| corrupt(path, "arc count overflows byte length"))?;
                let max_payload = count.saturating_mul(20);
                if payload_len < min_payload || payload_len > max_payload {
                    return Err(corrupt(
                        path,
                        format!("payload length {payload_len} impossible for {count} arcs"),
                    ));
                }
                if footer_len < 2 || footer_len > max_payload {
                    return Err(corrupt(
                        path,
                        format!("footer length {footer_len} impossible for {count} arcs"),
                    ));
                }
            }
            Ok(ShardHeader {
                version: ShardVersion::V2,
                n,
                count,
                payload_len,
                footer_len,
                header_len: V2_HEADER,
            })
        }
        other => Err(corrupt(path, format!("unsupported shard version {other}"))),
    }
}

/// Summary of one finished shard run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// File the run was written to.
    pub path: PathBuf,
    /// Vertex-universe size stamped in the header.
    pub n: u64,
    /// Arcs in the run.
    pub arcs: u64,
    /// Total bytes of the finished file (header + payload + footer).
    pub bytes: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming writer of one sorted run, in either wire version.
///
/// Arcs must be pushed in non-decreasing `(source, target)` order —
/// enforced per push, because the merge's correctness (and v2's
/// non-negative deltas) rest on it. The header's trailing length fields
/// are patched in by [`ShardWriter::finish`]; until then the file
/// carries poisoned sizes no reader accepts.
#[derive(Debug)]
pub struct ShardWriter {
    out: BufWriter<File>,
    path: PathBuf,
    n: u64,
    version: ShardVersion,
    arcs: u64,
    last: Option<Arc>,
    /// v2: payload bytes written so far.
    payload_len: u64,
    /// v2: reusable per-push encode scratch (<= 20 bytes live).
    scratch: Vec<u8>,
    /// v2: encoded `(row-delta, count)` footer entries, appended at
    /// finish. `O(min(arcs, n))` entries of a few bytes each — bounded by
    /// the run size, never the graph size.
    footer: Vec<u8>,
    footer_row: u64,
    footer_count: u64,
    footer_prev_row: u64,
}

impl ShardWriter {
    /// Creates a v2 shard over a universe of `n` vertices with the
    /// default IO buffer.
    pub fn create<P: AsRef<Path>>(path: P, n: u64) -> Result<Self> {
        Self::with_buffer(path, n, DEFAULT_IO_BUF)
    }

    /// Creates a v2 shard with an explicit IO buffer capacity.
    pub fn with_buffer<P: AsRef<Path>>(path: P, n: u64, buf_bytes: usize) -> Result<Self> {
        Self::with_buffer_versioned(path, n, buf_bytes, ShardVersion::default())
    }

    /// Creates a shard in an explicit wire version with an explicit IO
    /// buffer capacity — the only resident memory the writer holds
    /// beyond the (run-bounded) v2 footer accumulator.
    pub fn with_buffer_versioned<P: AsRef<Path>>(
        path: P,
        n: u64,
        buf_bytes: usize,
        version: ShardVersion,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut out = BufWriter::with_capacity(buf_bytes.max(64), File::create(&path)?);
        out.write_all(SHARD_MAGIC)?;
        out.write_all(&version.wire().to_le_bytes())?;
        out.write_all(&n.to_le_bytes())?;
        out.write_all(&UNFINISHED.to_le_bytes())?;
        if version == ShardVersion::V2 {
            out.write_all(&UNFINISHED.to_le_bytes())?;
            out.write_all(&UNFINISHED.to_le_bytes())?;
        }
        Ok(ShardWriter {
            out,
            path,
            n,
            version,
            arcs: 0,
            last: None,
            payload_len: 0,
            scratch: Vec::new(),
            footer: Vec::new(),
            footer_row: 0,
            footer_count: 0,
            footer_prev_row: 0,
        })
    }

    /// Wire version this writer emits.
    pub fn version(&self) -> ShardVersion {
        self.version
    }

    fn flush_footer_entry(&mut self) {
        let mut entry = std::mem::take(&mut self.footer);
        encode_varint(self.footer_row - self.footer_prev_row, &mut entry);
        encode_varint(self.footer_count, &mut entry);
        self.footer = entry;
        self.footer_prev_row = self.footer_row;
    }

    /// Appends one arc; must be `>=` the previous arc and in `0..n`.
    pub fn push(&mut self, u: u64, v: u64) -> Result<()> {
        if u >= self.n || v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u.max(v), n: self.n });
        }
        if let Some(last) = self.last {
            if (u, v) < last {
                return Err(corrupt(
                    &self.path,
                    format!("arc ({u},{v}) pushed after {last:?} — runs must be sorted"),
                ));
            }
        }
        match self.version {
            ShardVersion::V1 => {
                self.out.write_all(&u.to_le_bytes())?;
                self.out.write_all(&v.to_le_bytes())?;
            }
            ShardVersion::V2 => {
                // Deltas against (0, 0) before the first arc make the
                // rule uniform: row delta, then target delta within a
                // row or the absolute target on a row change.
                let (pu, pv) = self.last.unwrap_or((0, 0));
                let row_delta = u - pu;
                self.scratch.clear();
                let mut scratch = std::mem::take(&mut self.scratch);
                encode_varint(row_delta, &mut scratch);
                if row_delta == 0 {
                    encode_varint(v - pv, &mut scratch);
                } else {
                    encode_varint(v, &mut scratch);
                }
                self.out.write_all(&scratch)?;
                self.payload_len += scratch.len() as u64;
                self.scratch = scratch;
                // Row footer: close the open entry on a row change.
                if self.arcs == 0 {
                    self.footer_row = u;
                    self.footer_count = 1;
                } else if u == self.footer_row {
                    self.footer_count += 1;
                } else {
                    self.flush_footer_entry();
                    self.footer_row = u;
                    self.footer_count = 1;
                }
            }
        }
        self.last = Some((u, v));
        self.arcs += 1;
        Ok(())
    }

    /// Arcs pushed so far.
    pub fn arcs(&self) -> u64 {
        self.arcs
    }

    /// Flushes, appends the v2 footer, patches the header's length
    /// fields, and returns the run summary. Dropping a writer without
    /// calling this leaves the file unreadable by design.
    pub fn finish(mut self) -> Result<ShardInfo> {
        let bytes = match self.version {
            ShardVersion::V1 => {
                self.out.flush()?;
                let file = self.out.get_mut();
                file.seek(SeekFrom::Start(16))?;
                file.write_all(&self.arcs.to_le_bytes())?;
                file.flush()?;
                V1_HEADER + self.arcs * 16
            }
            ShardVersion::V2 => {
                if self.arcs > 0 {
                    self.flush_footer_entry();
                }
                let footer_len = self.footer.len() as u64;
                let footer = std::mem::take(&mut self.footer);
                self.out.write_all(&footer)?;
                self.out.flush()?;
                // count, payload_len and footer_len are contiguous at
                // byte 16 — one seek patches all three.
                let file = self.out.get_mut();
                file.seek(SeekFrom::Start(16))?;
                file.write_all(&self.arcs.to_le_bytes())?;
                file.write_all(&self.payload_len.to_le_bytes())?;
                file.write_all(&footer_len.to_le_bytes())?;
                file.flush()?;
                V2_HEADER + self.payload_len + footer_len
            }
        };
        kron_obs::counter!("shard.spilled_runs").add(1);
        kron_obs::counter!("shard.spilled_arcs").add(self.arcs);
        kron_obs::counter!("shard.spilled_bytes").add(bytes);
        Ok(ShardInfo { path: self.path, n: self.n, arcs: self.arcs, bytes })
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming reader of one sorted run (either wire version); validates
/// framing at open and ordering/range per arc, decoding a *block* of
/// arcs per refill so the merge inner loop never touches a syscall.
///
/// Resident memory is split between the raw byte window and the decoded
/// arc block so the total stays within the requested `buf_bytes` (plus a
/// small floor for tiny requests).
#[derive(Debug)]
pub struct ShardReader {
    file: File,
    path: PathBuf,
    n: u64,
    version: ShardVersion,
    total: u64,
    /// Arcs not yet decoded into the block.
    undecoded: u64,
    /// Payload bytes not yet pulled from the file.
    payload_left: u64,
    raw: Vec<u8>,
    raw_start: usize,
    raw_end: usize,
    block: Vec<Arc>,
    block_cap: usize,
    block_pos: usize,
    /// v2 delta state: the previously decoded arc ((0, 0) initially).
    prev: Arc,
    /// v1 sortedness state: the previously decoded arc, if any.
    last: Option<Arc>,
}

impl ShardReader {
    /// Opens a shard with the default IO buffer.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::with_buffer(path, DEFAULT_IO_BUF)
    }

    /// Opens a shard with an explicit buffer budget (raw window plus
    /// decoded block) — the only resident memory the reader holds.
    ///
    /// The declared sizes are validated against the real file length
    /// (overflow-checked, trailing bytes rejected) **before** anything
    /// is believed, so a forged header costs a few comparisons, not an
    /// OOM.
    pub fn with_buffer<P: AsRef<Path>>(path: P, buf_bytes: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let header = read_shard_header(&mut file, &path)?;
        // Half the budget for raw bytes, half for decoded 16-byte arcs.
        let raw_cap = (buf_bytes / 2).max(64);
        let block_cap = (buf_bytes / 32).clamp(16, 4096);
        Ok(ShardReader {
            file,
            path,
            n: header.n,
            version: header.version,
            total: header.count,
            undecoded: header.count,
            payload_left: header.payload_len,
            raw: vec![0u8; raw_cap],
            raw_start: 0,
            raw_end: 0,
            block: Vec::with_capacity(block_cap),
            block_cap,
            block_pos: 0,
            prev: (0, 0),
            last: None,
        })
    }

    /// Vertex-universe size stamped in the header.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Total arcs declared by the (validated) header.
    pub fn arcs_total(&self) -> u64 {
        self.total
    }

    /// Wire version of the underlying file.
    pub fn version(&self) -> ShardVersion {
        self.version
    }

    /// Compacts the raw window and refills it from the payload region.
    /// Returns the bytes added (0 once the payload is exhausted).
    fn fill_raw(&mut self) -> Result<usize> {
        if self.raw_start > 0 {
            self.raw.copy_within(self.raw_start..self.raw_end, 0);
            self.raw_end -= self.raw_start;
            self.raw_start = 0;
        }
        let space = self.raw.len() - self.raw_end;
        let want = self.payload_left.min(space as u64) as usize;
        if want == 0 {
            return Ok(0);
        }
        // The framing was validated at open, so a short read here means
        // the file shrank underneath us — surface it as corruption.
        self.file
            .read_exact(&mut self.raw[self.raw_end..self.raw_end + want])
            .map_err(|_| corrupt(&self.path, "payload truncated mid-run"))?;
        self.raw_end += want;
        self.payload_left -= want as u64;
        Ok(want)
    }

    /// Decodes one varint off the raw window, refilling as needed.
    fn take_varint(&mut self) -> Result<u64> {
        loop {
            match decode_varint(&self.raw[self.raw_start..self.raw_end]) {
                Ok(Varint::Value { value, len }) => {
                    self.raw_start += len;
                    return Ok(value);
                }
                Ok(Varint::NeedMore) => {
                    if self.fill_raw()? == 0 {
                        return Err(corrupt(&self.path, "payload ends mid-varint"));
                    }
                }
                Err(msg) => return Err(corrupt(&self.path, msg)),
            }
        }
    }

    fn decode_v1_arc(&mut self) -> Result<Arc> {
        while self.raw_end - self.raw_start < 16 {
            if self.fill_raw()? == 0 {
                return Err(corrupt(&self.path, "payload truncated mid-arc"));
            }
        }
        let at = self.raw_start;
        let u = u64::from_le_bytes(self.raw[at..at + 8].try_into().expect("8 bytes"));
        let v = u64::from_le_bytes(self.raw[at + 8..at + 16].try_into().expect("8 bytes"));
        self.raw_start += 16;
        if u >= self.n || v >= self.n {
            return Err(corrupt(&self.path, format!("arc ({u},{v}) out of range (n={})", self.n)));
        }
        if let Some(last) = self.last {
            if (u, v) < last {
                return Err(corrupt(
                    &self.path,
                    format!("arc ({u},{v}) after {last:?} — run not sorted"),
                ));
            }
        }
        self.last = Some((u, v));
        Ok((u, v))
    }

    fn decode_v2_arc(&mut self) -> Result<Arc> {
        let row_delta = self.take_varint()?;
        let u = self
            .prev
            .0
            .checked_add(row_delta)
            .ok_or_else(|| corrupt(&self.path, "row delta overflows u64"))?;
        let second = self.take_varint()?;
        let v = if row_delta == 0 {
            self.prev
                .1
                .checked_add(second)
                .ok_or_else(|| corrupt(&self.path, "target delta overflows u64"))?
        } else {
            second
        };
        // Sortedness is structural — deltas cannot be negative — so only
        // the range needs revalidating.
        if u >= self.n || v >= self.n {
            return Err(corrupt(&self.path, format!("arc ({u},{v}) out of range (n={})", self.n)));
        }
        self.prev = (u, v);
        Ok((u, v))
    }

    /// Decodes up to a block of arcs from the raw window.
    fn refill_block(&mut self) -> Result<()> {
        self.block.clear();
        self.block_pos = 0;
        while self.block.len() < self.block_cap && self.undecoded > 0 {
            let arc = match self.version {
                ShardVersion::V1 => self.decode_v1_arc()?,
                ShardVersion::V2 => self.decode_v2_arc()?,
            };
            self.block.push(arc);
            self.undecoded -= 1;
        }
        Ok(())
    }

    /// Next arc, or `None` at end of run. Errors on IO failure, an
    /// out-of-range vertex, an ordering violation, or a malformed /
    /// truncated encoding — corruption in the payload surfaces here
    /// instead of corrupting a merge.
    #[inline]
    pub fn next_arc(&mut self) -> Result<Option<Arc>> {
        if self.block_pos == self.block.len() {
            if self.undecoded == 0 {
                // Every declared arc decoded: the payload must be fully
                // consumed, or the count was forged low.
                if self.raw_end - self.raw_start > 0 || self.payload_left > 0 {
                    return Err(corrupt(&self.path, "trailing bytes inside payload"));
                }
                return Ok(None);
            }
            self.refill_block()?;
        }
        let arc = self.block[self.block_pos];
        self.block_pos += 1;
        Ok(Some(arc))
    }
}

// ---------------------------------------------------------------------------
// Footer scan
// ---------------------------------------------------------------------------

/// Reads one varint byte-at-a-time from `input`, bounded by `left`.
fn footer_varint(input: &mut impl Read, left: &mut u64, path: &Path) -> Result<u64> {
    let mut buf = [0u8; MAX_VARINT_BYTES];
    let mut filled = 0usize;
    loop {
        if *left == 0 {
            return Err(corrupt(path, "footer ends mid-varint"));
        }
        input.read_exact(&mut buf[filled..filled + 1])?;
        *left -= 1;
        filled += 1;
        match decode_varint(&buf[..filled]) {
            Ok(Varint::Value { value, .. }) => return Ok(value),
            Ok(Varint::NeedMore) => continue,
            Err(msg) => return Err(corrupt(path, msg)),
        }
    }
}

/// Adds a v2 shard's per-row arc counts (from its footer sidecar) into
/// `counts[row + 1]`, the layout a prefix sum turns into CSR offsets.
/// Returns `Ok(false)` untouched for a v1 shard (no footer exists).
///
/// The footer is validated like any other untrusted input: rows must be
/// strictly increasing and `< n`, counts positive, every addition
/// overflow-checked, and the entry sum must reproduce the header's arc
/// count exactly. A footer can still *lie consistently* about which rows
/// its arcs live in — [`build_external_csr`] verifies every row boundary
/// during the merge pass and self-heals, so a forged footer costs a
/// rewrite, never a corrupt CSR.
pub fn sum_footer_degrees<P: AsRef<Path>>(
    path: P,
    counts: &mut [u64],
    buf_bytes: usize,
) -> Result<bool> {
    let path = path.as_ref();
    let mut file = File::open(path)?;
    let header = read_shard_header(&mut file, path)?;
    if header.version == ShardVersion::V1 {
        return Ok(false);
    }
    if counts.len() as u64 != header.n + 1 {
        return Err(corrupt(
            path,
            format!("degree table sized {} for universe n={}", counts.len(), header.n),
        ));
    }
    file.seek(SeekFrom::Start(header.header_len + header.payload_len))?;
    let mut input = BufReader::with_capacity(buf_bytes.clamp(64, DEFAULT_IO_BUF), file);
    let mut left = header.footer_len;
    let mut prev_row = 0u64;
    let mut first = true;
    let mut sum = 0u64;
    while left > 0 {
        let delta = footer_varint(&mut input, &mut left, path)?;
        let count = footer_varint(&mut input, &mut left, path)?;
        let row = if first {
            delta
        } else {
            if delta == 0 {
                return Err(corrupt(path, "footer rows not strictly increasing"));
            }
            prev_row
                .checked_add(delta)
                .ok_or_else(|| corrupt(path, "footer row overflows u64"))?
        };
        if row >= header.n {
            return Err(corrupt(path, format!("footer row {row} out of range (n={})", header.n)));
        }
        if count == 0 {
            return Err(corrupt(path, "footer entry with zero count"));
        }
        sum = sum
            .checked_add(count)
            .filter(|&s| s <= header.count)
            .ok_or_else(|| corrupt(path, "footer counts exceed declared arcs"))?;
        let slot = &mut counts[row as usize + 1];
        *slot = slot
            .checked_add(count)
            .ok_or_else(|| corrupt(path, "summed degree overflows u64"))?;
        prev_row = row;
        first = false;
    }
    if sum != header.count {
        return Err(corrupt(
            path,
            format!("footer counts sum to {sum}, header declares {}", header.count),
        ));
    }
    Ok(true)
}

// ---------------------------------------------------------------------------
// Tournament merge
// ---------------------------------------------------------------------------

/// Accounting of one merge pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Runs merged.
    pub runs: usize,
    /// Unique arcs emitted.
    pub arcs_out: u64,
    /// Duplicate arcs discarded (within or across runs).
    pub duplicates_discarded: u64,
}

/// `true` when run `a`'s head must be emitted before run `b`'s: smaller
/// arc first, exhausted runs (`None`) last, ties to the lower run index
/// — exactly the order a min-heap of `(arc, index)` pairs would pop, so
/// loser-tree merges are bit-identical to the PR 8 heap merge.
fn beats(heads: &[Option<Arc>], a: u32, b: u32) -> bool {
    match (heads[a as usize], heads[b as usize]) {
        (Some(x), Some(y)) => (x, a) < (y, b),
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => a < b,
    }
}

/// Loser tree over `k2` (a power of two) runs: internal nodes hold the
/// *loser* of their subtree's playoff, slot 0 the overall winner.
/// Replacing the winner's head replays exactly one leaf-to-root path —
/// `log2(k)` comparisons per emitted arc, against `k` heap-sift
/// comparisons *plus* reheap churn for the `BinaryHeap` it replaces.
///
/// Invariants: (1) `tree[0]` always indexes the run whose head is the
/// global minimum under [`beats`]; (2) every internal node holds the
/// index that lost its subtree's final playoff, so a replay only ever
/// compares the changed leaf's path; (3) exhausted runs carry `None`
/// heads, ordered after every live head, so termination is "winner's
/// head is `None`" — no separate bookkeeping.
struct LoserTree {
    k2: usize,
    tree: Vec<u32>,
}

impl LoserTree {
    fn new(heads: &[Option<Arc>]) -> Self {
        let k2 = heads.len();
        debug_assert!(k2.is_power_of_two());
        let mut winners = vec![0u32; 2 * k2];
        for (i, w) in winners.iter_mut().enumerate().skip(k2) {
            *w = (i - k2) as u32;
        }
        let mut tree = vec![0u32; k2];
        for j in (1..k2).rev() {
            let a = winners[2 * j];
            let b = winners[2 * j + 1];
            let (win, lose) = if beats(heads, a, b) { (a, b) } else { (b, a) };
            winners[j] = win;
            tree[j] = lose;
        }
        tree[0] = winners[1];
        LoserTree { k2, tree }
    }

    #[inline]
    fn winner(&self) -> usize {
        self.tree[0] as usize
    }

    /// Replays the path from `leaf`'s parent to the root after `leaf`'s
    /// head changed.
    #[inline]
    fn replay(&mut self, heads: &[Option<Arc>], leaf: usize) {
        let mut w = leaf as u32;
        let mut j = (self.k2 + leaf) / 2;
        while j >= 1 {
            if beats(heads, self.tree[j], w) {
                std::mem::swap(&mut self.tree[j], &mut w);
            }
            j /= 2;
        }
        self.tree[0] = w;
    }
}

/// K-way merges sorted runs into one sorted, deduplicated arc stream,
/// delivered to the fallible `emit` in strictly increasing
/// `(source, target)` order; an `Err` from `emit` aborts the merge at
/// that arc — the error surfaces at the failing write, not at a flush.
///
/// All runs must agree on `n`. Mixed v1/v2 runs merge freely — the
/// format is a per-file property the readers absorb. Resident memory:
/// the readers' bounded buffers plus the `O(k)` tournament tree.
pub fn try_merge_shards<F: FnMut(u64, u64) -> Result<()>>(
    mut readers: Vec<ShardReader>,
    mut emit: F,
) -> Result<MergeStats> {
    let mut stats = MergeStats { runs: readers.len(), ..MergeStats::default() };
    if let Some(first) = readers.first() {
        let n = first.n();
        for r in &readers {
            if r.n() != n {
                return Err(corrupt(
                    &r.path,
                    format!("shard n={} disagrees with sibling n={n}", r.n()),
                ));
            }
        }
    }
    if !readers.is_empty() {
        let k2 = readers.len().next_power_of_two();
        let mut heads: Vec<Option<Arc>> = Vec::with_capacity(k2);
        for reader in readers.iter_mut() {
            heads.push(reader.next_arc()?);
        }
        heads.resize(k2, None);
        let mut tree = LoserTree::new(&heads);
        let mut last: Option<Arc> = None;
        loop {
            let w = tree.winner();
            let Some(arc) = heads[w] else { break };
            heads[w] = readers[w].next_arc()?;
            tree.replay(&heads, w);
            if last == Some(arc) {
                stats.duplicates_discarded += 1;
            } else {
                last = Some(arc);
                stats.arcs_out += 1;
                emit(arc.0, arc.1)?;
            }
        }
    }
    kron_obs::counter!("shard.merged_runs").add(stats.runs as u64);
    kron_obs::counter!("shard.merged_arcs").add(stats.arcs_out);
    kron_obs::counter!("shard.merge_duplicates_discarded").add(stats.duplicates_discarded);
    Ok(stats)
}

/// Infallible-visitor wrapper over [`try_merge_shards`].
pub fn merge_shards<F: FnMut(u64, u64)>(readers: Vec<ShardReader>, mut emit: F) -> Result<MergeStats> {
    try_merge_shards(readers, |u, v| {
        emit(u, v);
        Ok(())
    })
}

fn open_all<P: AsRef<Path>>(paths: &[P], buf_bytes: usize) -> Result<Vec<ShardReader>> {
    paths.iter().map(|p| ShardReader::with_buffer(p, buf_bytes)).collect()
}

impl CsrGraph {
    /// External-memory CSR build: k-way merges the sorted shard runs at
    /// `paths` straight into CSR arrays — **bit-identical** to
    /// [`CsrGraph::from_edge_list`] over the union of the runs' arcs, but
    /// the 16-byte-per-arc edge list and the counting-sort scratch never
    /// exist. Transient memory beyond the returned CSR is one `buf_bytes`
    /// budget per run plus the tournament tree.
    ///
    /// `n` comes from the shard headers (which must agree). An empty
    /// `paths` slice is rejected — there is no `n` to build over.
    pub fn from_shards<P: AsRef<Path>>(paths: &[P], buf_bytes: usize) -> Result<CsrGraph> {
        let _span = kron_obs::span::enter("shard/from_shards");
        let readers = open_all(paths, buf_bytes)?;
        let first = readers
            .first()
            .ok_or_else(|| corrupt(Path::new("<no shards>"), "from_shards needs >= 1 run"))?;
        let n = first.n();
        // Upper bound (duplicates only shrink it): reserving exactly once
        // keeps the peak at one targets array, no doubling.
        let declared: u64 = readers.iter().map(ShardReader::arcs_total).sum();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets: Vec<u64> = Vec::with_capacity(declared as usize);
        offsets.push(0usize);
        let mut row = 0u64;
        merge_shards(readers, |u, v| {
            // Arcs arrive sorted by (u, v); close out rows up to u.
            while row < u {
                offsets.push(targets.len());
                row += 1;
            }
            targets.push(v);
        })?;
        while row < n {
            offsets.push(targets.len());
            row += 1;
        }
        Ok(CsrGraph::from_sorted_parts(n, offsets, targets))
    }
}

// ---------------------------------------------------------------------------
// External CSR build
// ---------------------------------------------------------------------------

/// Accounting of one external CSR build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExternalCsrStats {
    /// Unique arcs written.
    pub arcs: u64,
    /// Duplicates discarded by the merge.
    pub duplicates_discarded: u64,
    /// Bytes of the emitted CSR file.
    pub bytes: u64,
    /// Merge passes taken (1 for [`build_external_csr`], 2 for the
    /// reference builder).
    pub merge_passes: u32,
    /// Whether the offset region had to be rewritten after the merge
    /// pass (v1 runs present, cross-run duplicates, or a lying footer).
    pub offsets_rewritten: bool,
}

fn write_csr_header<W: Write>(out: &mut W, n: u64, count: u64) -> Result<()> {
    out.write_all(CSR_MAGIC)?;
    out.write_all(&CSR_VERSION.to_le_bytes())?;
    out.write_all(&n.to_le_bytes())?;
    out.write_all(&count.to_le_bytes())?;
    Ok(())
}

/// Fully out-of-core CSR build in **one** merge pass: v2 footers predict
/// the offset table, which is written optimistically before the pass;
/// the pass appends targets while verifying every row boundary against
/// the prediction. If the prediction holds (all-v2 runs, honest footers,
/// no cross-run duplicates — the normal spill output) the file is
/// already correct when the pass ends. Any divergence flips the build
/// into repair mode, which finalizes true boundaries in place and
/// rewrites the `O(n)` offset region with one seek — so the output is
/// **byte-identical** to [`build_external_csr_two_pass`] in every case,
/// for half the merge work in the common one.
///
/// Write errors surface at the failing write (the merge visitor is
/// fallible), not at a final flush. Peak resident memory is the
/// `(n + 1)`-entry offset table plus the bounded run buffers:
/// independent of the arc count, which only ever exists on disk.
pub fn build_external_csr<P: AsRef<Path>>(
    paths: &[P],
    out: &Path,
    buf_bytes: usize,
) -> Result<ExternalCsrStats> {
    let _span = kron_obs::span::enter("shard/build_external_csr");
    let readers = open_all(paths, buf_bytes)?;
    let first = readers
        .first()
        .ok_or_else(|| corrupt(Path::new("<no shards>"), "external build needs >= 1 run"))?;
    let n = first.n();
    let n_usize = n as usize;

    // Predicted offsets from the v2 footers. The prediction is untrusted
    // — every row boundary is re-verified during the merge pass below.
    let mut offsets = vec![0u64; n_usize + 1];
    let mut predicted = readers.iter().all(|r| r.version() == ShardVersion::V2);
    if predicted {
        for p in paths {
            if !sum_footer_degrees(p, &mut offsets, buf_bytes)? {
                predicted = false;
                break;
            }
        }
    }
    let mut predicted_total = 0u64;
    if predicted {
        for i in 1..=n_usize {
            offsets[i] = offsets[i]
                .checked_add(offsets[i - 1])
                .ok_or_else(|| corrupt(out, "predicted offsets overflow u64"))?;
        }
        predicted_total = offsets[n_usize];
    } else {
        offsets.iter_mut().for_each(|o| *o = 0);
    }

    let mut writer = BufWriter::with_capacity(buf_bytes.max(64), File::create(out)?);
    write_csr_header(&mut writer, n, if predicted { predicted_total } else { UNFINISHED })?;
    for offset in &offsets {
        writer.write_all(&offset.to_le_bytes())?;
    }

    // The single merge pass: append targets, and finalize/verify each row
    // boundary the moment the stream moves past it. `dirty` flips on the
    // first boundary that disagrees with the prediction (or immediately
    // when there is none); from then on `offsets` tracks the truth.
    let mut dirty = !predicted;
    let mut row = 0u64;
    let mut pos = 0u64;
    let readers = readers; // moved into the merge
    let stats = {
        let writer = &mut writer;
        let offsets = &mut offsets;
        let dirty = &mut dirty;
        let row = &mut row;
        let pos = &mut pos;
        try_merge_shards(readers, move |u, v| {
            while *row < u {
                let slot = *row as usize + 1;
                if *dirty {
                    offsets[slot] = *pos;
                } else if offsets[slot] != *pos {
                    *dirty = true;
                    offsets[slot] = *pos;
                }
                *row += 1;
            }
            writer.write_all(&v.to_le_bytes())?;
            *pos += 1;
            Ok(())
        })?
    };
    while row < n {
        let slot = row as usize + 1;
        if dirty {
            offsets[slot] = pos;
        } else if offsets[slot] != pos {
            dirty = true;
            offsets[slot] = pos;
        }
        row += 1;
    }
    debug_assert!(dirty || stats.arcs_out == predicted_total);

    writer.flush()?;
    if dirty {
        // Repair: the arc count and the offset region are contiguous
        // from byte 16, so one seek rewrites both.
        let file = writer.get_mut();
        file.seek(SeekFrom::Start(16))?;
        let mut patch = BufWriter::with_capacity(buf_bytes.max(64), &mut *file);
        patch.write_all(&stats.arcs_out.to_le_bytes())?;
        for offset in &offsets {
            patch.write_all(&offset.to_le_bytes())?;
        }
        patch.flush()?;
    }
    let bytes = 24 + (n + 1) * 8 + stats.arcs_out * 8;
    kron_obs::counter!("shard.external_csr_arcs").add(stats.arcs_out);
    kron_obs::counter!("shard.external_csr_bytes").add(bytes);
    if dirty {
        kron_obs::counter!("shard.external_csr_offset_rewrites").add(1);
    }
    Ok(ExternalCsrStats {
        arcs: stats.arcs_out,
        duplicates_discarded: stats.duplicates_discarded,
        bytes,
        merge_passes: 1,
        offsets_rewritten: dirty,
    })
}

/// The PR 8 reference builder: two merge passes (degree count, then
/// targets), no footer use. Kept as the conformance oracle —
/// [`build_external_csr`] must produce byte-identical files — and as the
/// fallback shape for formats without footers.
pub fn build_external_csr_two_pass<P: AsRef<Path>>(
    paths: &[P],
    out: &Path,
    buf_bytes: usize,
) -> Result<ExternalCsrStats> {
    let _span = kron_obs::span::enter("shard/build_external_csr_two_pass");
    let readers = open_all(paths, buf_bytes)?;
    let first = readers
        .first()
        .ok_or_else(|| corrupt(Path::new("<no shards>"), "external build needs >= 1 run"))?;
    let n = first.n();
    // Pass 1: degree counts (the only O(n) state of the build).
    let mut counts = vec![0u64; n as usize + 1];
    let pass1 = merge_shards(readers, |u, _| counts[u as usize + 1] += 1)?;
    for i in 0..n as usize {
        counts[i + 1] += counts[i];
    }
    let mut writer = BufWriter::with_capacity(buf_bytes.max(64), File::create(out)?);
    write_csr_header(&mut writer, n, pass1.arcs_out)?;
    for offset in &counts {
        writer.write_all(&offset.to_le_bytes())?;
    }
    // Pass 2: stream targets in merged order, which is exactly CSR order.
    let readers = open_all(paths, buf_bytes)?;
    let writer_ref = &mut writer;
    let pass2 = try_merge_shards(readers, move |_, v| {
        writer_ref.write_all(&v.to_le_bytes())?;
        Ok(())
    })?;
    if pass2 != pass1 {
        return Err(corrupt(out, "shards changed between merge passes"));
    }
    writer.flush()?;
    let bytes = 24 + (n + 1) * 8 + pass1.arcs_out * 8;
    kron_obs::counter!("shard.external_csr_arcs").add(pass1.arcs_out);
    kron_obs::counter!("shard.external_csr_bytes").add(bytes);
    Ok(ExternalCsrStats {
        arcs: pass1.arcs_out,
        duplicates_discarded: pass1.duplicates_discarded,
        bytes,
        merge_passes: 2,
        offsets_rewritten: false,
    })
}

// ---------------------------------------------------------------------------
// External CSR reader with an optional block cache
// ---------------------------------------------------------------------------

const CACHE_WAYS: usize = 4;

/// Configuration of the [`ExternalCsr`] block cache.
#[derive(Debug, Clone, Copy)]
pub struct CsrCacheConfig {
    /// Bytes per cached block (rounded up to a multiple of 8 so a word
    /// never straddles blocks; floor 64).
    pub block_bytes: usize,
    /// Total block capacity across all sets (rounded to the sets the
    /// 4-way associativity implies).
    pub blocks: usize,
    /// Seed of the deterministic eviction stream.
    pub seed: u64,
}

impl Default for CsrCacheConfig {
    fn default() -> Self {
        CsrCacheConfig { block_bytes: 4096, blocks: 64, seed: 0x9E37_79B9_7F4A_7C15 }
    }
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a resident block.
    pub hits: u64,
    /// Lookups that had to read the block from disk.
    pub misses: u64,
    /// Resident blocks displaced to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// SplitMix64 step — the deterministic eviction stream (the same
/// generator the `kron-serve` row cache uses).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix(*state)
}

/// SplitMix64 finalizer, doubling as the set-index hash.
fn mix(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Default)]
struct CacheWay {
    /// Block id + 1; 0 = empty. Avoids an `Option` in the probe loop.
    tag: u64,
    data: Vec<u8>,
}

#[derive(Debug)]
struct CacheSet {
    ways: [CacheWay; CACHE_WAYS],
    rng: u64,
}

/// Bounded 4-way set-associative block cache with seeded random
/// eviction — the `kron-serve` row-cache design applied to fixed-size
/// file blocks. Way data is allocated lazily on first fill, so an idle
/// cache costs only its set table.
#[derive(Debug)]
struct BlockCache {
    block_bytes: usize,
    set_mask: u64,
    sets: Vec<CacheSet>,
    stats: CacheStats,
}

impl BlockCache {
    fn new(cfg: &CsrCacheConfig) -> Self {
        let block_bytes = cfg.block_bytes.max(64).div_ceil(8) * 8;
        let sets = (cfg.blocks / CACHE_WAYS).max(1).next_power_of_two();
        let sets = (0..sets)
            .map(|i| CacheSet {
                ways: Default::default(),
                rng: mix(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            })
            .collect::<Vec<_>>();
        let set_mask = sets.len() as u64 - 1;
        BlockCache { block_bytes, set_mask, sets, stats: CacheStats::default() }
    }

    /// Returns the cached block, loading it through `load` on a miss.
    fn block<F: FnOnce(&mut Vec<u8>) -> Result<()>>(
        &mut self,
        block_id: u64,
        load: F,
    ) -> Result<&[u8]> {
        let tag = block_id + 1;
        let set = &mut self.sets[(mix(block_id) & self.set_mask) as usize];
        let slot = if let Some(hit) = set.ways.iter().position(|w| w.tag == tag) {
            self.stats.hits += 1;
            kron_obs::counter!("shard.block_cache_hits").add(1);
            hit
        } else {
            self.stats.misses += 1;
            kron_obs::counter!("shard.block_cache_misses").add(1);
            let slot = match set.ways.iter().position(|w| w.tag == 0) {
                Some(empty) => empty,
                None => {
                    self.stats.evictions += 1;
                    kron_obs::counter!("shard.block_cache_evictions").add(1);
                    (splitmix64(&mut set.rng) % CACHE_WAYS as u64) as usize
                }
            };
            let way = &mut set.ways[slot];
            way.tag = 0; // poisoned until the load succeeds
            load(&mut way.data)?;
            way.tag = tag;
            slot
        };
        Ok(&set.ways[slot].data)
    }
}

/// Reader over a `KRSC` external CSR file: validated header,
/// O(1)-memory degree/row access (optionally through a bounded block
/// cache), streaming per-degree and per-row visitors for beyond-RAM
/// analytics, and a full [`ExternalCsr::load`] for validation-scale
/// equality checks.
#[derive(Debug)]
pub struct ExternalCsr {
    file: File,
    path: PathBuf,
    n: u64,
    arcs: u64,
    len: u64,
    cache: Option<BlockCache>,
}

impl ExternalCsr {
    /// Opens and validates an external CSR file. The declared `n` and arc
    /// count must reproduce the file length exactly (overflow-checked), so
    /// truncation, forged headers, and trailing garbage are all rejected
    /// before any allocation.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let len = file.metadata()?.len();
        if len < 24 {
            return Err(corrupt(&path, "external CSR truncated (header)"));
        }
        let mut header = [0u8; 24];
        file.read_exact(&mut header)?;
        if &header[0..4] != CSR_MAGIC {
            return Err(corrupt(&path, "bad magic (expected KRSC)"));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != CSR_VERSION {
            return Err(corrupt(&path, format!("unsupported CSR version {version}")));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let arcs = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let need = n
            .checked_add(1)
            .and_then(|rows| rows.checked_mul(8))
            .and_then(|o| arcs.checked_mul(8).and_then(|t| o.checked_add(t)))
            .and_then(|body| body.checked_add(24))
            .ok_or_else(|| corrupt(&path, "header sizes overflow byte length"))?;
        if len != need {
            return Err(corrupt(
                &path,
                format!("file length {len} does not match declared sizes ({need})"),
            ));
        }
        Ok(ExternalCsr { file, path, n, arcs, len, cache: None })
    }

    /// Opens with a bounded block cache behind [`ExternalCsr::degree`]
    /// and [`ExternalCsr::row`] — repeated point lookups (the serve /
    /// analytics pattern) hit memory instead of a seek + read.
    pub fn open_with_cache<P: AsRef<Path>>(path: P, cfg: CsrCacheConfig) -> Result<Self> {
        let mut ext = Self::open(path)?;
        ext.cache = Some(BlockCache::new(&cfg));
        Ok(ext)
    }

    /// Vertex count.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Stored arc count.
    pub fn arc_count(&self) -> u64 {
        self.arcs
    }

    /// Cache counters (all zero when opened without a cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Reads the little-endian word at `byte_off`, through the block
    /// cache when one is attached.
    fn read_word(&mut self, byte_off: u64) -> Result<u64> {
        debug_assert!(byte_off % 8 == 0 && byte_off + 8 <= self.len);
        match &mut self.cache {
            None => {
                self.file.seek(SeekFrom::Start(byte_off))?;
                let mut buf = [0u8; 8];
                self.file.read_exact(&mut buf)?;
                Ok(u64::from_le_bytes(buf))
            }
            Some(cache) => {
                let bb = cache.block_bytes as u64;
                let block_id = byte_off / bb;
                let within = (byte_off % bb) as usize;
                let file = &mut self.file;
                let file_len = self.len;
                let path = &self.path;
                let block = cache.block(block_id, |data| {
                    let start = block_id * bb;
                    let take = (file_len - start).min(bb) as usize;
                    data.clear();
                    data.resize(take, 0);
                    file.seek(SeekFrom::Start(start))?;
                    file.read_exact(data)
                        .map_err(|_| corrupt(path, "external CSR truncated mid-block"))?;
                    Ok(())
                })?;
                if within + 8 > block.len() {
                    return Err(corrupt(&self.path, "external CSR block short of a word"));
                }
                Ok(u64::from_le_bytes(block[within..within + 8].try_into().expect("8 bytes")))
            }
        }
    }

    fn offset_pair(&mut self, p: u64) -> Result<(u64, u64)> {
        if p >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: p, n: self.n });
        }
        let start = self.read_word(24 + p * 8)?;
        let end = self.read_word(24 + (p + 1) * 8)?;
        if start > end || end > self.arcs {
            return Err(corrupt(&self.path, format!("row {p} offsets [{start},{end}) corrupt")));
        }
        Ok((start, end))
    }

    /// Degree of `p` — two offset reads, O(1) memory.
    pub fn degree(&mut self, p: u64) -> Result<u64> {
        let (start, end) = self.offset_pair(p)?;
        Ok(end - start)
    }

    /// Neighbor row of `p` — memory proportional to that row alone.
    pub fn row(&mut self, p: u64) -> Result<Vec<u64>> {
        let mut row = Vec::new();
        self.row_into(p, &mut row)?;
        Ok(row)
    }

    /// Reads `p`'s neighbor row into `out` (cleared first), reusing its
    /// allocation — the zero-alloc steady state for row-at-a-time scans.
    pub fn row_into(&mut self, p: u64, out: &mut Vec<u64>) -> Result<()> {
        let (start, end) = self.offset_pair(p)?;
        out.clear();
        out.reserve((end - start) as usize);
        let targets_base = 24 + (self.n + 1) * 8;
        if self.cache.is_some() {
            for i in start..end {
                out.push(self.read_word(targets_base + i * 8)?);
            }
        } else {
            self.file.seek(SeekFrom::Start(targets_base + start * 8))?;
            let mut buf = [0u8; 8];
            for _ in start..end {
                self.file.read_exact(&mut buf)?;
                out.push(u64::from_le_bytes(buf));
            }
        }
        Ok(())
    }

    /// Streams every vertex's degree in id order through a bounded
    /// buffer — the beyond-RAM degree scan.
    pub fn for_each_degree<F: FnMut(u64, u64)>(&mut self, mut f: F) -> Result<()> {
        self.file.seek(SeekFrom::Start(24))?;
        let mut reader = BufReader::with_capacity(DEFAULT_IO_BUF, &self.file);
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        let mut prev = u64::from_le_bytes(buf);
        for p in 0..self.n {
            reader.read_exact(&mut buf)?;
            let next = u64::from_le_bytes(buf);
            if next < prev {
                return Err(corrupt(&self.path, format!("offsets not monotone at row {p}")));
            }
            f(p, next - prev);
            prev = next;
        }
        Ok(())
    }

    /// Streams every row in id order — two bounded sequential readers
    /// (offsets and targets) plus one reusable row buffer, so whole-graph
    /// analytics (BFS frontiers, degree moments, triangle probes) run
    /// over a CSR that never fits in memory. The visitor may fail, which
    /// aborts the scan at that row.
    pub fn for_each_row<F: FnMut(u64, &[u64]) -> Result<()>>(&mut self, mut f: F) -> Result<()> {
        let mut offs = BufReader::with_capacity(DEFAULT_IO_BUF, File::open(&self.path)?);
        offs.seek(SeekFrom::Start(24))?;
        let mut tgts = BufReader::with_capacity(DEFAULT_IO_BUF, File::open(&self.path)?);
        tgts.seek(SeekFrom::Start(24 + (self.n + 1) * 8))?;
        let mut buf = [0u8; 8];
        offs.read_exact(&mut buf)?;
        let mut prev = u64::from_le_bytes(buf);
        if prev != 0 {
            return Err(corrupt(&self.path, "first offset is not zero"));
        }
        let mut row_buf: Vec<u64> = Vec::new();
        for p in 0..self.n {
            offs.read_exact(&mut buf)?;
            let next = u64::from_le_bytes(buf);
            if next < prev || next > self.arcs {
                return Err(corrupt(&self.path, format!("offsets corrupt at row {p}")));
            }
            row_buf.clear();
            for _ in prev..next {
                tgts.read_exact(&mut buf)?;
                let v = u64::from_le_bytes(buf);
                if v >= self.n {
                    return Err(corrupt(&self.path, format!("target {v} out of range")));
                }
                row_buf.push(v);
            }
            f(p, &row_buf)?;
            prev = next;
        }
        if prev != self.arcs {
            return Err(corrupt(&self.path, "final offset disagrees with arc count"));
        }
        Ok(())
    }

    /// Loads the whole file as an in-memory [`CsrGraph`] — validation-
    /// scale only; this is the one method that allocates O(arcs).
    pub fn load(&mut self) -> Result<CsrGraph> {
        self.file.seek(SeekFrom::Start(24))?;
        let mut reader = BufReader::with_capacity(DEFAULT_IO_BUF, &self.file);
        let mut buf = [0u8; 8];
        let mut offsets = Vec::with_capacity(self.n as usize + 1);
        for row in 0..=self.n {
            reader.read_exact(&mut buf)?;
            let offset = u64::from_le_bytes(buf);
            if offset > self.arcs || offsets.last().is_some_and(|&o| (o as u64) > offset) {
                return Err(corrupt(&self.path, format!("offsets corrupt at row {row}")));
            }
            offsets.push(offset as usize);
        }
        if offsets.last() != Some(&(self.arcs as usize)) {
            return Err(corrupt(&self.path, "final offset disagrees with arc count"));
        }
        let mut targets = Vec::with_capacity(self.arcs as usize);
        for _ in 0..self.arcs {
            reader.read_exact(&mut buf)?;
            let v = u64::from_le_bytes(buf);
            if v >= self.n {
                return Err(corrupt(&self.path, format!("target {v} out of range")));
            }
            targets.push(v);
        }
        Ok(CsrGraph::from_sorted_parts(self.n, offsets, targets))
    }
}

/// Sorts `arcs` and spills them as one (v2) run at `path` (helper for
/// run buffers accumulated in arrival order).
pub fn spill_sorted_run(path: &Path, n: u64, arcs: &mut Vec<Arc>) -> Result<ShardInfo> {
    spill_sorted_run_versioned(path, n, arcs, ShardVersion::default())
}

/// [`spill_sorted_run`] with an explicit wire version.
pub fn spill_sorted_run_versioned(
    path: &Path,
    n: u64,
    arcs: &mut Vec<Arc>,
    version: ShardVersion,
) -> Result<ShardInfo> {
    arcs.sort_unstable();
    let mut writer = ShardWriter::with_buffer_versioned(path, n, DEFAULT_IO_BUF, version)?;
    for &(u, v) in arcs.iter() {
        writer.push(u, v)?;
    }
    arcs.clear();
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_list::EdgeList;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("kron_shard_unit").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_run_versioned(path: &Path, n: u64, arcs: &[Arc], version: ShardVersion) -> ShardInfo {
        let mut w = ShardWriter::with_buffer_versioned(path, n, DEFAULT_IO_BUF, version).unwrap();
        for &(u, v) in arcs {
            w.push(u, v).unwrap();
        }
        w.finish().unwrap()
    }

    fn write_run(path: &Path, n: u64, arcs: &[Arc]) -> ShardInfo {
        write_run_versioned(path, n, arcs, ShardVersion::default())
    }

    fn drain(path: &Path) -> Result<Vec<Arc>> {
        let mut reader = ShardReader::open(path)?;
        let mut out = Vec::new();
        while let Some(arc) = reader.next_arc()? {
            out.push(arc);
        }
        Ok(out)
    }

    #[test]
    fn varint_roundtrip_edge_values() {
        for value in [0u64, 1, 127, 128, 129, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            let len = encode_varint(value, &mut buf);
            assert_eq!(len, buf.len());
            assert!(len <= MAX_VARINT_BYTES);
            assert_eq!(decode_varint(&buf), Ok(Varint::Value { value, len }), "value {value}");
            // A longer window must decode identically.
            let mut padded = buf.clone();
            padded.push(0xAB);
            assert_eq!(decode_varint(&padded), Ok(Varint::Value { value, len }));
        }
    }

    #[test]
    fn varint_rejects_malformed_encodings() {
        // Overlong spelling of 0.
        assert!(decode_varint(&[0x80, 0x00]).is_err());
        // Overlong spelling of 1.
        assert!(decode_varint(&[0x81, 0x00]).is_err());
        // Ten continuation bytes: longer than any u64.
        assert!(decode_varint(&[0xFF; 10]).is_err());
        // Tenth byte carrying bits beyond 2^64.
        let mut too_big = [0xFF; 10];
        too_big[9] = 0x02;
        assert!(decode_varint(&too_big).is_err());
        // u64::MAX itself is fine: 9 continuations + final 0x01.
        let mut max = [0xFF; 10];
        max[9] = 0x01;
        assert_eq!(decode_varint(&max), Ok(Varint::Value { value: u64::MAX, len: 10 }));
        // Truncated windows ask for more instead of erroring.
        assert_eq!(decode_varint(&[0x80]), Ok(Varint::NeedMore));
        assert_eq!(decode_varint(&[]), Ok(Varint::NeedMore));
    }

    #[test]
    fn roundtrip_single_run() {
        let d = dir("roundtrip");
        let path = d.join("run.krsh");
        let arcs = vec![(0, 1), (0, 2), (1, 0), (3, 3)];
        let info = write_run(&path, 4, &arcs);
        assert_eq!(info.arcs, 4);
        assert_eq!(info.bytes, std::fs::metadata(&path).unwrap().len());
        let mut reader = ShardReader::open(&path).unwrap();
        assert_eq!(reader.n(), 4);
        assert_eq!(reader.version(), ShardVersion::V2);
        let mut back = Vec::new();
        while let Some(arc) = reader.next_arc().unwrap() {
            back.push(arc);
        }
        assert_eq!(back, arcs);
    }

    #[test]
    fn v1_and_v2_hold_the_same_stream_and_v2_is_smaller() {
        let d = dir("versions");
        // Dense-ish sorted run with duplicates and row gaps.
        let mut arcs = Vec::new();
        for u in 0..64u64 {
            for v in 0..32u64 {
                arcs.push((u, v * 3 % 97));
            }
        }
        arcs.sort_unstable();
        let p1 = d.join("run_v1.krsh");
        let p2 = d.join("run_v2.krsh");
        let i1 = write_run_versioned(&p1, 100, &arcs, ShardVersion::V1);
        let i2 = write_run_versioned(&p2, 100, &arcs, ShardVersion::V2);
        assert_eq!(drain(&p1).unwrap(), arcs);
        assert_eq!(drain(&p2).unwrap(), arcs);
        assert_eq!(i1.arcs, i2.arcs);
        assert!(
            i2.bytes * 4 <= i1.bytes,
            "v2 ({} bytes) is not <= 1/4 of v1 ({} bytes)",
            i2.bytes,
            i1.bytes
        );
    }

    #[test]
    fn empty_run_roundtrips_in_both_versions() {
        let d = dir("empty");
        for (name, version) in [("v1", ShardVersion::V1), ("v2", ShardVersion::V2)] {
            let path = d.join(format!("{name}.krsh"));
            let info = write_run_versioned(&path, 4, &[], version);
            assert_eq!(info.arcs, 0);
            assert_eq!(drain(&path).unwrap(), Vec::<Arc>::new());
        }
    }

    #[test]
    fn writer_rejects_unsorted_and_out_of_range() {
        let d = dir("writer_rejects");
        for (name, version) in [("v1", ShardVersion::V1), ("v2", ShardVersion::V2)] {
            let mut w = ShardWriter::with_buffer_versioned(
                d.join(format!("bad_{name}.krsh")),
                4,
                DEFAULT_IO_BUF,
                version,
            )
            .unwrap();
            w.push(2, 2).unwrap();
            assert!(w.push(1, 0).is_err(), "{name}: descending arc accepted");
            assert!(w.push(2, 9).is_err(), "{name}: out-of-range target accepted");
        }
    }

    #[test]
    fn unfinished_shard_is_rejected() {
        let d = dir("unfinished");
        for (name, version) in [("v1", ShardVersion::V1), ("v2", ShardVersion::V2)] {
            let path = d.join(format!("dropped_{name}.krsh"));
            {
                let mut w =
                    ShardWriter::with_buffer_versioned(&path, 4, DEFAULT_IO_BUF, version).unwrap();
                w.push(0, 1).unwrap();
                // Dropped without finish: lengths stay poisoned.
            }
            assert!(ShardReader::open(&path).is_err(), "{name}: unfinished shard accepted");
        }
    }

    #[test]
    fn reader_rejects_framing_corruption() {
        let d = dir("framing");
        let path = d.join("run.krsh");
        write_run(&path, 4, &[(0, 1), (1, 2)]);
        let good = std::fs::read(&path).unwrap();

        // Truncated header.
        std::fs::write(&path, &good[..10]).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Unsupported version.
        let mut bad = good.clone();
        bad[4] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Truncated payload/footer.
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(ShardReader::open(&path).is_err());
        // Trailing byte.
        let mut bad = good.clone();
        bad.push(0);
        std::fs::write(&path, &bad).unwrap();
        assert!(ShardReader::open(&path).is_err());
    }

    #[test]
    fn reader_rejects_forged_counts_without_allocating() {
        let d = dir("forged");
        // v1: a count whose byte length cannot match the file.
        let path = d.join("forged_v1.krsh");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_V1_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(ShardReader::open(&path).is_err(), "u64::MAX count accepted");
        // A count whose * 16 wraps to something tiny.
        bytes.truncate(16);
        bytes.extend_from_slice(&((u64::MAX / 16) + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(ShardReader::open(&path).is_err(), "wrapping count accepted");

        // v2: a forged count dies on the payload-bounds check even when
        // the total length still adds up.
        let path2 = d.join("forged_v2.krsh");
        write_run(&path2, 4, &[(0, 1), (1, 2)]);
        let good = std::fs::read(&path2).unwrap();
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&1_000_000u64.to_le_bytes());
        std::fs::write(&path2, &bad).unwrap();
        assert!(ShardReader::open(&path2).is_err(), "inflated v2 count accepted");
        let mut bad = good.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path2, &bad).unwrap();
        assert!(ShardReader::open(&path2).is_err(), "u64::MAX v2 count accepted");
    }

    #[test]
    fn reader_rejects_unsorted_v1_payload() {
        let d = dir("unsorted");
        let path = d.join("run.krsh");
        // Hand-build a v1 shard whose payload is out of order. The block
        // decoder surfaces the violation on the first pull.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_V1_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        for (u, v) in [(2u64, 0u64), (1, 0)] {
            bytes.extend_from_slice(&u.to_le_bytes());
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(drain(&path).is_err(), "ordering violation accepted");
    }

    #[test]
    fn reader_rejects_v2_payload_corruption() {
        let d = dir("v2_payload");
        // Out-of-range row via a forged delta: arc decodes to u = 5 >= n.
        let path = d.join("range.krsh");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_V2_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes()); // n
        bytes.extend_from_slice(&1u64.to_le_bytes()); // count
        bytes.extend_from_slice(&2u64.to_le_bytes()); // payload_len
        bytes.extend_from_slice(&2u64.to_le_bytes()); // footer_len
        bytes.extend_from_slice(&[5, 0]); // arc (5, 0)
        bytes.extend_from_slice(&[5, 1]); // footer (row 5, count 1)
        std::fs::write(&path, &bytes).unwrap();
        assert!(drain(&path).is_err(), "out-of-range v2 arc accepted");

        // Payload with leftover bytes after the declared arcs.
        let path = d.join("trailing.krsh");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_V2_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes()); // two arcs' worth
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0, 1, 1, 0]); // arcs (0,1) and (1,0)
        bytes.extend_from_slice(&[0, 1]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(drain(&path).is_err(), "trailing payload bytes accepted");

        // Payload ending mid-varint (continuation bit on the last byte).
        let path = d.join("midvarint.krsh");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        bytes.extend_from_slice(&SHARD_V2_VERSION.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&[0x00, 0x80]); // second varint never ends
        bytes.extend_from_slice(&[0, 1]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(drain(&path).is_err(), "mid-varint truncation accepted");
    }

    #[test]
    fn merge_dedups_across_runs() {
        let d = dir("merge");
        let p1 = d.join("a.krsh");
        let p2 = d.join("b.krsh");
        write_run(&p1, 5, &[(0, 1), (2, 3), (4, 4)]);
        write_run(&p2, 5, &[(0, 1), (1, 0), (2, 3)]);
        let readers = vec![ShardReader::open(&p1).unwrap(), ShardReader::open(&p2).unwrap()];
        let mut merged = Vec::new();
        let stats = merge_shards(readers, |u, v| merged.push((u, v))).unwrap();
        assert_eq!(merged, vec![(0, 1), (1, 0), (2, 3), (4, 4)]);
        assert_eq!(stats.arcs_out, 4);
        assert_eq!(stats.duplicates_discarded, 2);
        assert_eq!(stats.runs, 2);
    }

    #[test]
    fn merge_rejects_disagreeing_universes() {
        let d = dir("merge_n");
        let p1 = d.join("a.krsh");
        let p2 = d.join("b.krsh");
        write_run(&p1, 5, &[(0, 1)]);
        write_run(&p2, 6, &[(0, 1)]);
        let readers = vec![ShardReader::open(&p1).unwrap(), ShardReader::open(&p2).unwrap()];
        assert!(merge_shards(readers, |_, _| {}).is_err());
    }

    #[test]
    fn merge_handles_mixed_versions_and_many_runs() {
        let d = dir("merge_mixed");
        // 9 runs (pads the tournament to 16 leaves) in alternating wire
        // versions, with heavy overlap.
        let n = 50u64;
        let mut paths = Vec::new();
        let mut expect = std::collections::BTreeSet::new();
        for r in 0..9u64 {
            let mut arcs: Vec<Arc> = (0..40)
                .map(|i| ((r * 7 + i * 3) % n, (r * 11 + i * 5) % n))
                .collect();
            arcs.sort_unstable();
            for &a in &arcs {
                expect.insert(a);
            }
            let version = if r % 2 == 0 { ShardVersion::V2 } else { ShardVersion::V1 };
            let path = d.join(format!("run{r}.krsh"));
            write_run_versioned(&path, n, &arcs, version);
            paths.push(path);
        }
        let readers: Vec<ShardReader> =
            paths.iter().map(|p| ShardReader::with_buffer(p, 256).unwrap()).collect();
        let mut merged = Vec::new();
        let stats = merge_shards(readers, |u, v| merged.push((u, v))).unwrap();
        assert_eq!(merged, expect.into_iter().collect::<Vec<_>>());
        assert_eq!(stats.arcs_out as usize, merged.len());
        assert_eq!(stats.runs, 9);
    }

    #[test]
    fn try_merge_propagates_emit_errors() {
        let d = dir("merge_fallible");
        let p = d.join("run.krsh");
        write_run(&p, 5, &[(0, 1), (1, 2), (2, 3)]);
        let mut seen = 0u32;
        let err = try_merge_shards(vec![ShardReader::open(&p).unwrap()], |_, _| {
            seen += 1;
            if seen == 2 {
                Err(corrupt(Path::new("sink"), "disk full"))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err(), "emit error swallowed");
        assert_eq!(seen, 2, "merge continued past the failing emit");
    }

    #[test]
    fn sum_footer_degrees_matches_actual_degrees() {
        let d = dir("footer_sum");
        let n = 30u64;
        let arcs: Vec<Arc> = {
            let mut a: Vec<Arc> =
                (0..200u64).map(|i| ((i * 13) % n, (i * 7) % n)).collect();
            a.sort_unstable();
            a
        };
        let path = d.join("run.krsh");
        write_run(&path, n, &arcs);
        let mut counts = vec![0u64; n as usize + 1];
        assert!(sum_footer_degrees(&path, &mut counts, 1024).unwrap());
        let mut expect = vec![0u64; n as usize + 1];
        for &(u, _) in &arcs {
            expect[u as usize + 1] += 1;
        }
        assert_eq!(counts, expect);
        // v1 shards have no footer and leave the table untouched.
        let p1 = d.join("run_v1.krsh");
        write_run_versioned(&p1, n, &arcs, ShardVersion::V1);
        let mut untouched = vec![0u64; n as usize + 1];
        assert!(!sum_footer_degrees(&p1, &mut untouched, 1024).unwrap());
        assert!(untouched.iter().all(|&c| c == 0));
    }

    #[test]
    fn from_shards_matches_from_edge_list() {
        let d = dir("from_shards");
        let arcs = vec![(0u64, 3u64), (1, 1), (2, 0), (3, 2), (0, 1), (1, 1)];
        let list = EdgeList::from_arcs(4, arcs.clone()).unwrap();
        let reference = CsrGraph::from_edge_list(&list);
        // Two interleaved sorted runs with a duplicate across them.
        let mut run1 = vec![arcs[0], arcs[2], arcs[4]];
        let mut run2 = vec![arcs[1], arcs[3], arcs[5], (0, 3)];
        run1.sort_unstable();
        run2.sort_unstable();
        let p1 = d.join("r1.krsh");
        let p2 = d.join("r2.krsh");
        write_run(&p1, 4, &run1);
        write_run(&p2, 4, &run2);
        let built = CsrGraph::from_shards(&[&p1, &p2], 1024).unwrap();
        assert_eq!(built, reference);
        assert_eq!(built.offsets(), reference.offsets());
        assert_eq!(built.targets(), reference.targets());
    }

    #[test]
    fn from_shards_needs_a_run() {
        let empty: [&Path; 0] = [];
        assert!(CsrGraph::from_shards(&empty, 1024).is_err());
    }

    #[test]
    fn external_csr_roundtrip_and_streaming() {
        let d = dir("external");
        let arcs = vec![(0u64, 1u64), (0, 2), (1, 0), (3, 0), (3, 3)];
        let list = EdgeList::from_arcs(4, arcs.clone()).unwrap();
        let reference = CsrGraph::from_edge_list(&list);
        let mut sorted = arcs.clone();
        sorted.sort_unstable();
        let run = d.join("run.krsh");
        write_run(&run, 4, &sorted);
        let out = d.join("c.krsc");
        let stats = build_external_csr(&[&run], &out, 1024).unwrap();
        assert_eq!(stats.arcs, 5);
        assert_eq!(stats.duplicates_discarded, 0);
        assert_eq!(stats.bytes, std::fs::metadata(&out).unwrap().len());
        assert_eq!(stats.merge_passes, 1);
        assert!(!stats.offsets_rewritten, "honest v2 footers should predict exactly");

        let mut ext = ExternalCsr::open(&out).unwrap();
        assert_eq!(ext.n(), 4);
        assert_eq!(ext.arc_count(), 5);
        assert_eq!(ext.load().unwrap(), reference);
        for p in 0..4u64 {
            assert_eq!(ext.degree(p).unwrap(), reference.degree(p), "degree({p})");
            assert_eq!(ext.row(p).unwrap(), reference.neighbors(p), "row({p})");
        }
        let mut degrees = Vec::new();
        ext.for_each_degree(|_, deg| degrees.push(deg)).unwrap();
        assert_eq!(degrees, reference.degrees());
        let mut rows = Vec::new();
        ext.for_each_row(|p, row| {
            rows.push((p, row.to_vec()));
            Ok(())
        })
        .unwrap();
        for (p, row) in rows {
            assert_eq!(row, reference.neighbors(p), "for_each_row({p})");
        }
        assert!(ext.degree(99).is_err());
    }

    #[test]
    fn one_pass_build_matches_two_pass_bytes() {
        let d = dir("onepass");
        let n = 40u64;
        let base: Vec<Arc> = {
            let mut a: Vec<Arc> = (0..300u64).map(|i| ((i * 17) % n, (i * 23) % n)).collect();
            a.sort_unstable();
            a.dedup();
            a
        };
        // (label, run splits, versions, expect a rewrite?)
        let halves = base.len() / 2;
        let cases: Vec<(&str, Vec<Vec<Arc>>, Vec<ShardVersion>, bool)> = vec![
            (
                "v2 disjoint",
                vec![base[..halves].to_vec(), base[halves..].to_vec()],
                vec![ShardVersion::V2, ShardVersion::V2],
                false,
            ),
            (
                "v2 overlapping",
                vec![base[..halves + 20].to_vec(), base[halves - 20..].to_vec()],
                vec![ShardVersion::V2, ShardVersion::V2],
                true,
            ),
            (
                "v1 only",
                vec![base[..halves].to_vec(), base[halves..].to_vec()],
                vec![ShardVersion::V1, ShardVersion::V1],
                true,
            ),
            (
                "mixed versions",
                vec![base[..halves].to_vec(), base[halves..].to_vec()],
                vec![ShardVersion::V1, ShardVersion::V2],
                true,
            ),
        ];
        for (label, splits, versions, expect_rewrite) in cases {
            let mut paths = Vec::new();
            for (i, (split, version)) in splits.iter().zip(&versions).enumerate() {
                let path = d.join(format!("{}_{i}.krsh", label.replace(' ', "_")));
                write_run_versioned(&path, n, split, *version);
                paths.push(path);
            }
            let one = d.join(format!("{}_one.krsc", label.replace(' ', "_")));
            let two = d.join(format!("{}_two.krsc", label.replace(' ', "_")));
            let s1 = build_external_csr(&paths, &one, 512).unwrap();
            let s2 = build_external_csr_two_pass(&paths, &two, 512).unwrap();
            assert_eq!(s1.arcs, s2.arcs, "{label}: arcs");
            assert_eq!(
                s1.duplicates_discarded, s2.duplicates_discarded,
                "{label}: duplicates"
            );
            assert_eq!(s1.merge_passes, 1, "{label}");
            assert_eq!(s2.merge_passes, 2, "{label}");
            assert_eq!(s1.offsets_rewritten, expect_rewrite, "{label}: rewrite flag");
            assert_eq!(
                std::fs::read(&one).unwrap(),
                std::fs::read(&two).unwrap(),
                "{label}: one-pass and two-pass files differ"
            );
        }
    }

    #[test]
    fn forged_footer_self_heals_or_errors() {
        let d = dir("forged_footer");
        let n = 4u64;
        let path = d.join("run.krsh");
        write_run(&path, n, &[(0, 1), (0, 2), (1, 0)]);
        let good = std::fs::read(&path).unwrap();
        // Footer is [(row 0, count 2), (row +1, count 1)] = [0,2,1,1] at
        // the tail. A *consistent* lie keeps the sum: [(0,1),(+1,2)].
        assert_eq!(&good[good.len() - 4..], &[0, 2, 1, 1]);
        let mut lying = good.clone();
        let at = lying.len() - 4;
        lying[at..].copy_from_slice(&[0, 1, 1, 2]);
        std::fs::write(&path, &lying).unwrap();
        // The merge pass catches the divergence and rewrites: output is
        // still byte-identical to the reference build.
        let one = d.join("one.krsc");
        let two = d.join("two.krsc");
        let s1 = build_external_csr(&[&path], &one, 512).unwrap();
        assert!(s1.offsets_rewritten, "lying footer must force a rewrite");
        build_external_csr_two_pass(&[&path], &two, 512).unwrap();
        assert_eq!(std::fs::read(&one).unwrap(), std::fs::read(&two).unwrap());

        // An *inconsistent* footer (sum != count) is a clean error.
        let mut broken = good.clone();
        let at = broken.len() - 4;
        broken[at..].copy_from_slice(&[0, 2, 1, 2]);
        std::fs::write(&path, &broken).unwrap();
        let mut counts = vec![0u64; n as usize + 1];
        assert!(sum_footer_degrees(&path, &mut counts, 512).is_err());
        assert!(build_external_csr(&[&path], &one, 512).is_err());
    }

    #[test]
    fn block_cache_matches_uncached_and_counts() {
        let d = dir("cache");
        let n = 64u64;
        let mut arcs: Vec<Arc> = (0..400u64).map(|i| ((i * 29) % n, (i * 31) % n)).collect();
        arcs.sort_unstable();
        arcs.dedup();
        let run = d.join("run.krsh");
        write_run(&run, n, &arcs);
        let out = d.join("c.krsc");
        build_external_csr(&[&run], &out, 1024).unwrap();

        let mut plain = ExternalCsr::open(&out).unwrap();
        let cfg = CsrCacheConfig { block_bytes: 128, blocks: 8, seed: 42 };
        let mut cached = ExternalCsr::open_with_cache(&out, cfg).unwrap();
        assert_eq!(plain.cache_stats(), CacheStats::default());
        let mut row_buf = Vec::new();
        for pass in 0..3 {
            for p in 0..n {
                assert_eq!(cached.degree(p).unwrap(), plain.degree(p).unwrap(), "degree({p})");
                cached.row_into(p, &mut row_buf).unwrap();
                assert_eq!(row_buf, plain.row(p).unwrap(), "row({p}) pass {pass}");
            }
        }
        let stats = cached.cache_stats();
        assert!(stats.hits > 0, "repeated scans must hit the cache");
        assert!(stats.misses > 0, "cold blocks must miss");
        assert!(
            stats.evictions > 0,
            "an 8-block cache over a {}-byte file must evict",
            std::fs::metadata(&out).unwrap().len()
        );
        // Deterministic: the same access sequence reproduces the stats.
        let mut again = ExternalCsr::open_with_cache(&out, cfg).unwrap();
        for _ in 0..3 {
            for p in 0..n {
                again.degree(p).unwrap();
                again.row_into(p, &mut row_buf).unwrap();
            }
        }
        assert_eq!(again.cache_stats(), stats);
    }

    #[test]
    fn external_csr_rejects_corruption() {
        let d = dir("external_bad");
        let run = d.join("run.krsh");
        write_run(&run, 3, &[(0, 1), (2, 2)]);
        let out = d.join("c.krsc");
        build_external_csr(&[&run], &out, 1024).unwrap();
        let good = std::fs::read(&out).unwrap();

        std::fs::write(&out, &good[..20]).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "truncated header accepted");
        let mut bad = good.clone();
        bad[0] = b'Z';
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "bad magic accepted");
        let mut bad = good.clone();
        bad[4] = 7;
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "bad version accepted");
        std::fs::write(&out, &good[..good.len() - 8]).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "truncated targets accepted");
        let mut bad = good.clone();
        bad.push(1);
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "trailing byte accepted");
        // Forged n that would overflow the length computation.
        let mut bad = good.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&out, &bad).unwrap();
        assert!(ExternalCsr::open(&out).is_err(), "overflowing n accepted");
    }

    #[test]
    fn spill_sorted_run_sorts_and_clears() {
        let d = dir("spill_helper");
        let path = d.join("run.krsh");
        let mut buf = vec![(3u64, 0u64), (0, 1), (2, 2)];
        let info = spill_sorted_run(&path, 4, &mut buf).unwrap();
        assert!(buf.is_empty(), "run buffer must be recycled empty");
        assert_eq!(info.arcs, 3);
        let mut reader = ShardReader::open(&path).unwrap();
        let mut back = Vec::new();
        while let Some(arc) = reader.next_arc().unwrap() {
            back.push(arc);
        }
        assert_eq!(back, vec![(0, 1), (2, 2), (3, 0)]);
    }
}
