//! Degree statistics and histograms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::CsrGraph;

/// Summary statistics of a degree (or any nonnegative integer) vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum value (0 for empty input).
    pub min: u64,
    /// Maximum value (0 for empty input).
    pub max: u64,
    /// Arithmetic mean (0.0 for empty input).
    pub mean: f64,
    /// Sum of all values.
    pub total: u64,
}

/// Computes summary statistics of `values`.
pub fn stats(values: &[u64]) -> DegreeStats {
    if values.is_empty() {
        return DegreeStats { min: 0, max: 0, mean: 0.0, total: 0 };
    }
    let total: u64 = values.iter().sum();
    DegreeStats {
        min: *values.iter().min().expect("nonempty"),
        max: *values.iter().max().expect("nonempty"),
        mean: total as f64 / values.len() as f64,
        total,
    }
}

/// Degree statistics of a graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    stats(&g.degrees())
}

/// Exact histogram: value → multiplicity, in ascending value order.
pub fn histogram(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut h = BTreeMap::new();
    for &v in values {
        *h.entry(v).or_insert(0) += 1;
    }
    h
}

/// Degree histogram of a graph.
pub fn degree_histogram(g: &CsrGraph) -> BTreeMap<u64, u64> {
    histogram(&g.degrees())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clique, star};

    #[test]
    fn stats_of_clique() {
        let s = degree_stats(&clique(5));
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.total, 20);
    }

    #[test]
    fn stats_of_star() {
        let s = degree_stats(&star(5)); // center + 4 leaves
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.total, 8);
    }

    #[test]
    fn stats_empty() {
        let s = stats(&[]);
        assert_eq!(s, DegreeStats { min: 0, max: 0, mean: 0.0, total: 0 });
    }

    #[test]
    fn histogram_counts() {
        let h = histogram(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(h.get(&1), Some(&1));
        assert_eq!(h.get(&2), Some(&2));
        assert_eq!(h.get(&3), Some(&3));
        assert_eq!(h.get(&4), None);
    }

    #[test]
    fn degree_histogram_star() {
        let h = degree_histogram(&star(6));
        assert_eq!(h.get(&1), Some(&5));
        assert_eq!(h.get(&5), Some(&1));
    }
}
