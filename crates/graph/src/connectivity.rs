//! Connected components via breadth-first search.

use std::collections::VecDeque;

use crate::{CsrGraph, VertexId};

/// Component labeling: `labels[v]` is the 0-based component id of `v`,
/// assigned in order of discovery; `count` is the number of components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Per-vertex component id.
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub count: u32,
}

impl Components {
    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.count as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Id of the largest component (ties broken by lowest id).
    pub fn largest(&self) -> Option<u32> {
        let sizes = self.sizes();
        (0..self.count).max_by_key(|&c| (sizes[c as usize], std::cmp::Reverse(c)))
    }

    /// Vertices belonging to component `c`.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Labels the connected components of an undirected graph.
///
/// Treats arcs as undirected (follows out-neighbors only, which is complete
/// for symmetric graphs; callers with directed input should symmetrize
/// first).
pub fn connected_components(g: &CsrGraph) -> Components {
    const UNSEEN: u32 = u32::MAX;
    let n = g.n() as usize;
    let mut labels = vec![UNSEEN; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if labels[start] != UNSEEN {
            continue;
        }
        let comp = count;
        count += 1;
        labels[start] = comp;
        queue.push_back(start as VertexId);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v as usize] == UNSEEN {
                    labels[v as usize] = comp;
                    queue.push_back(v);
                }
            }
        }
    }
    Components { labels, count }
}

/// True when the graph has at most one connected component.
pub fn is_connected(g: &CsrGraph) -> bool {
    g.n() <= 1 || connected_components(g).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = CsrGraph::from_arcs(3, vec![(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert_eq!(c.labels, vec![0, 0, 0]);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_and_isolated() {
        let g = CsrGraph::from_arcs(5, vec![(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes(), vec![2, 2, 1]);
        assert_eq!(c.members(2), vec![4]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_prefers_big_then_low_id() {
        let g = CsrGraph::from_arcs(
            6,
            vec![(0, 1), (1, 0), (2, 3), (3, 2), (3, 4), (4, 3)],
        )
        .unwrap();
        let c = connected_components(&g);
        assert_eq!(c.largest(), Some(1)); // {2,3,4}
        let g2 = CsrGraph::from_arcs(4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        assert_eq!(connected_components(&g2).largest(), Some(0)); // tie → low id
    }

    #[test]
    fn empty_and_singleton() {
        let empty = CsrGraph::from_arcs(0, vec![]).unwrap();
        assert_eq!(connected_components(&empty).count, 0);
        assert!(is_connected(&empty));
        let single = CsrGraph::from_arcs(1, vec![(0, 0)]).unwrap();
        let c = connected_components(&single);
        assert_eq!(c.count, 1);
        assert!(is_connected(&single));
    }
}
