//! Shared-memory parallel execution helpers.
//!
//! Every parallel entry point in the workspace funnels through this
//! module: a thread-count resolver, balanced contiguous index chunking,
//! ordered chunk-maps built on [`std::thread::scope`] (no external
//! thread-pool dependency), and a disjoint-write shared slice for
//! contention-free scatter phases. The design invariant is
//! **determinism** — work is partitioned into contiguous index ranges and
//! per-chunk results are recombined in chunk order, so a parallel run
//! produces output byte-identical to the sequential loop it replaces.
//! Callers degrade to the plain sequential path when one thread is
//! requested.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Resolves an optional thread-count request.
///
/// `None` (or an explicit 0) means "use the machine": the value of
/// [`std::thread::available_parallelism`], falling back to 1 when the
/// runtime cannot report it. Any other request is honoured as given, so
/// callers can oversubscribe deliberately in tests.
pub fn num_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(t) if t > 0 => t,
        _ => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
    }
}

/// Splits `0..len` into at most `chunks` balanced contiguous ranges.
///
/// The first `len % chunks` ranges are one element longer, every range is
/// non-empty, and concatenating them in order reproduces `0..len` exactly
/// (the property the ordered merges rely on). Returns fewer than `chunks`
/// ranges when `len < chunks`, and none at all for `len == 0`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Splits the index space of a prefix-sum table into ranges of roughly
/// equal **weight** rather than equal length.
///
/// `prefix` has `n + 1` entries with `prefix[0] == 0` and
/// `prefix[i+1] - prefix[i]` the weight of index `i` (e.g. CSR row
/// offsets, where the weight of a row is its arc count). Used to balance
/// per-row work across threads under skewed degree distributions.
pub fn split_by_weight(prefix: &[usize], chunks: usize) -> Vec<Range<usize>> {
    let n = prefix.len().saturating_sub(1);
    if n == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(n);
    let total = prefix[n] as u128;
    let mut out: Vec<Range<usize>> = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for c in 1..=chunks {
        if start >= n {
            break;
        }
        let end = if c == chunks {
            n
        } else {
            let target = (total * c as u128 / chunks as u128) as usize;
            prefix.partition_point(|&w| w < target).clamp(start + 1, n)
        };
        out.push(start..end);
        start = end;
    }
    if let Some(last) = out.last_mut() {
        last.end = n;
    }
    out
}

/// Applies `work` to each range on its own scoped thread and returns the
/// per-range results **in range order**.
///
/// `work` receives `(range_index, range)`. With zero or one range the
/// closure runs on the calling thread — no spawn, identical result.
/// Panics in workers propagate to the caller.
pub fn map_ranges<T, F>(ranges: Vec<Range<usize>>, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(c, r)| work(c, r))
            .collect();
    }
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(c, r)| scope.spawn(move || work(c, r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// [`map_ranges`] over the balanced chunking of `0..len`.
pub fn map_chunks<T, F>(len: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    map_ranges(chunk_ranges(len, threads), work)
}

/// Runs `work(range_index, range, state)` for each range on its own
/// scoped thread, handing each worker exclusive ownership of its entry of
/// `states` (the per-thread-accumulator pattern: each worker mutates its
/// own cursor table / buffer without synchronization).
///
/// `ranges` and `states` must have equal length. Results come back in
/// range order.
pub fn map_with_state<S, T, F>(ranges: Vec<Range<usize>>, states: Vec<S>, work: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, Range<usize>, S) -> T + Sync,
{
    assert_eq!(ranges.len(), states.len(), "one state per range");
    if ranges.len() <= 1 {
        return ranges
            .into_iter()
            .zip(states)
            .enumerate()
            .map(|(c, (r, s))| work(c, r, s))
            .collect();
    }
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .zip(states)
            .enumerate()
            .map(|(c, (r, s))| scope.spawn(move || work(c, r, s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Chunk-maps `0..len`, then folds the per-chunk accumulators in chunk
/// order: `merge(acc, chunk_result)` starting from `init`.
///
/// This is the per-thread-accumulator pattern (histograms, partial sums)
/// with a deterministic merge; for order-sensitive outputs prefer
/// [`map_chunks`] + an explicit ordered concatenation.
pub fn map_reduce_chunks<T, A, W, M>(len: usize, threads: usize, work: W, init: A, merge: M) -> A
where
    T: Send,
    W: Fn(usize, Range<usize>) -> T + Sync,
    M: FnMut(A, T) -> A,
{
    map_chunks(len, threads, work).into_iter().fold(init, merge)
}

/// Ordered concatenation of per-chunk output vectors, preallocated.
///
/// When chunks partition an index space in order and each worker emits
/// its slice of the sequential output, this recombination makes the
/// parallel result byte-identical to the sequential one.
pub fn concat_ordered<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

/// Splits a mutable slice into per-range disjoint windows according to a
/// prefix-sum table: range `r` receives `slice[prefix[r.start]..prefix[r.end]]`.
///
/// `ranges` must be a contiguous ascending partition of the prefix's
/// index space (the output shape of [`chunk_ranges`]/[`split_by_weight`])
/// and `slice` must span exactly the prefix total. This is the safe
/// counterpart of [`DisjointWriter`] for the common case where each
/// worker owns one contiguous output region: hand the windows to
/// [`map_with_state`] and every worker fills its own `&mut [T]` with no
/// unsafe code.
pub fn windows_by_prefix<'a, T>(
    mut slice: &'a mut [T],
    prefix: &[usize],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for r in ranges {
        assert_eq!(prefix[r.start], consumed, "ranges must partition the prefix in order");
        let len = prefix[r.end] - prefix[r.start];
        let (head, tail) = slice.split_at_mut(len);
        out.push(head);
        slice = tail;
        consumed += len;
    }
    assert!(slice.is_empty(), "slice longer than the prefix total");
    out
}

/// A shared slice that multiple workers may write through concurrently,
/// **provided every index is written by at most one worker** (a scatter
/// with precomputed disjoint destinations, e.g. the stable-counting-sort
/// offsets of the parallel CSR build).
///
/// The aliasing discipline is the caller's obligation — this type only
/// erases the `&mut` so the slice can cross thread boundaries.
pub struct DisjointWriter<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: sharing is sound because writes go to caller-guaranteed
// disjoint indices; `T: Send` makes moving the values between threads ok.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a slice for disjoint concurrent writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointWriter {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Writes `value` at `idx`.
    ///
    /// # Safety
    ///
    /// `idx` must be in bounds and no other thread may read or write it
    /// during this call (each destination index owned by one worker).
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.len);
        self.ptr.add(idx).write(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_default_positive() {
        assert!(num_threads(None) >= 1);
        assert!(num_threads(Some(0)) >= 1);
        assert_eq!(num_threads(Some(3)), 3);
        assert_eq!(num_threads(Some(1)), 1);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 64, 100] {
            for chunks in [1usize, 2, 3, 8, 150] {
                let ranges = chunk_ranges(len, chunks);
                // Ranges are non-empty, contiguous, and cover 0..len.
                let mut cursor = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, cursor);
                    assert!(r.end > r.start, "empty chunk for len={len} chunks={chunks}");
                    cursor = r.end;
                }
                assert_eq!(cursor, len);
                if len > 0 {
                    assert_eq!(ranges.len(), chunks.min(len));
                    // Balance: sizes differ by at most one.
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_zero_chunks() {
        assert!(chunk_ranges(5, 0).is_empty());
    }

    #[test]
    fn split_by_weight_covers_and_orders() {
        // Skewed weights: one heavy index among many light ones.
        let weights = [1usize, 1, 50, 1, 1, 1, 1, 30, 1, 1];
        let mut prefix = vec![0usize];
        for w in weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        for chunks in [1usize, 2, 3, 4, 20] {
            let ranges = split_by_weight(&prefix, chunks);
            let mut cursor = 0usize;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                assert!(r.end > r.start);
                cursor = r.end;
            }
            assert_eq!(cursor, weights.len(), "chunks={chunks}");
        }
        assert!(split_by_weight(&[0], 4).is_empty());
    }

    #[test]
    fn map_chunks_ordered_and_equal_across_thread_counts() {
        let items: Vec<u64> = (0..1000).map(|x| x * x % 97).collect();
        let sequential: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        for threads in [1usize, 2, 3, 8] {
            let parts = map_chunks(items.len(), threads, |_, range| {
                items[range].iter().map(|&x| x + 1).collect::<Vec<u64>>()
            });
            assert_eq!(concat_ordered(parts), sequential, "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_empty_input() {
        let parts: Vec<Vec<u64>> = map_chunks(0, 4, |_, _| Vec::new());
        assert!(parts.is_empty());
        assert!(concat_ordered(parts).is_empty());
    }

    #[test]
    fn map_reduce_sums() {
        let total: u64 = map_reduce_chunks(
            1001,
            4,
            |_, range| range.map(|i| i as u64).sum::<u64>(),
            0u64,
            |acc, part| acc + part,
        );
        assert_eq!(total, 1000 * 1001 / 2);
    }

    #[test]
    fn chunk_index_passed_in_order() {
        let indices = map_chunks(10, 3, |c, _| c);
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn map_with_state_consumes_states_in_order() {
        let ranges = chunk_ranges(9, 3);
        let states = vec![10u64, 20, 30];
        let got = map_with_state(ranges, states, |c, r, s| s + c as u64 + r.start as u64);
        assert_eq!(got, vec![10, 24, 38]);
    }

    #[test]
    fn windows_by_prefix_partition_and_fill() {
        // Weighted rows: window sizes follow the prefix, not the ranges.
        let prefix = [0usize, 2, 2, 7, 8];
        let mut out = vec![0u64; 8];
        let ranges = vec![0..2usize, 2..4];
        let windows = windows_by_prefix(&mut out, &prefix, &ranges);
        assert_eq!(windows.iter().map(|w| w.len()).collect::<Vec<_>>(), vec![2, 6]);
        let states = windows;
        map_with_state(ranges, states, |c, _, window| {
            for x in window.iter_mut() {
                *x = c as u64 + 1;
            }
        });
        assert_eq!(out, vec![1, 1, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn windows_by_prefix_empty_ranges() {
        let mut out: Vec<u64> = vec![];
        let windows = windows_by_prefix(&mut out, &[0], &[]);
        assert!(windows.is_empty());
    }

    #[test]
    fn disjoint_writer_scatter() {
        let n = 100usize;
        let mut out = vec![0u64; n];
        let writer = DisjointWriter::new(&mut out);
        let ranges = chunk_ranges(n, 4);
        std::thread::scope(|scope| {
            for r in ranges {
                let writer = &writer;
                scope.spawn(move || {
                    for i in r {
                        // SAFETY: chunks are disjoint, so each index is
                        // written by exactly one worker.
                        unsafe { writer.write(i, (i as u64) * 3) };
                    }
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }
}
