//! Mutable arc-list graph representation.
//!
//! [`EdgeList`] is the construction-time representation: an unsorted bag of
//! directed arcs plus a vertex count. It is what the distributed generator
//! produces and what the file readers parse; analytics convert it to
//! [`crate::CsrGraph`].

use crate::{Arc, GraphError, Result, VertexId};

/// A graph stored as a vertex count and a list of directed arcs.
///
/// Undirected graphs store both arcs of every edge. The list may transiently
/// contain duplicates; [`EdgeList::sort_dedup`] canonicalizes it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    n: u64,
    arcs: Vec<Arc>,
}

impl EdgeList {
    /// Creates an empty graph with `n` vertices.
    pub fn new(n: u64) -> Self {
        EdgeList { n, arcs: Vec::new() }
    }

    /// Creates a graph from a prebuilt arc vector, validating vertex ranges.
    pub fn from_arcs(n: u64, arcs: Vec<Arc>) -> Result<Self> {
        for &(u, v) in &arcs {
            if u >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
        }
        Ok(EdgeList { n, arcs })
    }

    /// Creates a graph from an arc vector the caller guarantees is in
    /// range, skipping the `O(nnz)` validation scan (checked in debug
    /// builds). Used by generators whose arcs are in range by
    /// construction, e.g. the Kronecker product of validated factors.
    pub fn from_arcs_unchecked(n: u64, arcs: Vec<Arc>) -> Self {
        debug_assert!(
            arcs.iter().all(|&(u, v)| u < n && v < n),
            "from_arcs_unchecked given an out-of-range arc"
        );
        EdgeList { n, arcs }
    }

    /// Creates an **undirected** graph from unordered vertex pairs: each pair
    /// `{u, v}` with `u != v` contributes both arcs; `u == v` contributes one
    /// self-loop arc.
    pub fn from_undirected_pairs(n: u64, pairs: &[(VertexId, VertexId)]) -> Result<Self> {
        let mut g = EdgeList::new(n);
        for &(u, v) in pairs {
            g.add_undirected(u, v)?;
        }
        g.sort_dedup();
        Ok(g)
    }

    /// Number of vertices.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of stored arcs (adjacency-matrix nonzeros).
    pub fn nnz(&self) -> usize {
        self.arcs.len()
    }

    /// True when no arcs are stored.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Borrow the raw arc slice.
    pub fn arcs(&self) -> &[Arc] {
        &self.arcs
    }

    /// Consumes the list and returns the raw arcs.
    pub fn into_arcs(self) -> Vec<Arc> {
        self.arcs
    }

    /// Grows the vertex count (never shrinks).
    pub fn ensure_vertices(&mut self, n: u64) {
        self.n = self.n.max(n);
    }

    /// Adds a single directed arc.
    pub fn add_arc(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        self.arcs.push((u, v));
        Ok(())
    }

    /// Adds an undirected edge: both arcs when `u != v`, one arc when `u == v`.
    pub fn add_undirected(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.add_arc(u, v)?;
        if u != v {
            self.add_arc(v, u)?;
        }
        Ok(())
    }

    /// Number of self-loop arcs.
    pub fn self_loop_count(&self) -> usize {
        self.arcs.iter().filter(|&&(u, v)| u == v).count()
    }

    /// Number of unordered edges; a self loop counts as one edge.
    ///
    /// Assumes the list is symmetric and deduplicated (use
    /// [`EdgeList::sort_dedup`] first when in doubt).
    pub fn undirected_edge_count(&self) -> u64 {
        let loops = self.self_loop_count() as u64;
        loops + (self.nnz() as u64 - loops) / 2
    }

    /// Sorts arcs lexicographically and removes duplicates.
    pub fn sort_dedup(&mut self) {
        self.arcs.sort_unstable();
        self.arcs.dedup();
    }

    /// Adds the reverse of every arc so the graph becomes symmetric, then
    /// deduplicates.
    pub fn symmetrize(&mut self) {
        let rev: Vec<Arc> = self
            .arcs
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| (v, u))
            .collect();
        self.arcs.extend(rev);
        self.sort_dedup();
    }

    /// True when every arc `(u,v)` has its reverse `(v,u)` present.
    pub fn is_symmetric(&self) -> bool {
        let mut sorted = self.arcs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted
            .iter()
            .all(|&(u, v)| u == v || sorted.binary_search(&(v, u)).is_ok())
    }

    /// Removes all self-loop arcs.
    pub fn remove_self_loops(&mut self) {
        self.arcs.retain(|&(u, v)| u != v);
    }

    /// Adds a self loop on **every** vertex (the paper's `A + I_A`), then
    /// deduplicates so pre-existing loops are not doubled.
    pub fn add_full_self_loops(&mut self) {
        self.arcs.extend((0..self.n).map(|v| (v, v)));
        self.sort_dedup();
    }

    /// Returns an error if any self loop is present.
    pub fn require_loop_free(&self) -> Result<()> {
        match self.arcs.iter().find(|&&(u, v)| u == v) {
            Some(&(u, _)) => Err(GraphError::HasSelfLoop { vertex: u }),
            None => Ok(()),
        }
    }

    /// Iterates over canonical unordered edges: each `{u,v}` once with
    /// `u <= v`. Requires a symmetric, deduplicated list.
    pub fn undirected_edges(&self) -> impl Iterator<Item = Arc> + '_ {
        self.arcs.iter().copied().filter(|&(u, v)| u <= v)
    }

    /// Relabels vertices through `map` (`map[old] = Some(new)`); arcs with an
    /// unmapped endpoint are dropped. `new_n` is the new vertex count.
    pub fn relabel(&self, map: &[Option<VertexId>], new_n: u64) -> Result<Self> {
        let mut out = EdgeList::new(new_n);
        for &(u, v) in &self.arcs {
            if let (Some(nu), Some(nv)) = (map[u as usize], map[v as usize]) {
                out.add_arc(nu, nv)?;
            }
        }
        Ok(out)
    }

    /// Degree vector (adjacency-row sums): each arc `(u, v)` contributes 1 to
    /// `deg[u]`. With both arcs stored this is the undirected degree; a self
    /// loop contributes 1.
    pub fn out_degrees(&self) -> Vec<u64> {
        let mut deg = vec![0u64; self.n as usize];
        for &(u, _) in &self.arcs {
            deg[u as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let g = EdgeList::new(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.nnz(), 0);
        assert!(g.is_empty());
        assert_eq!(g.undirected_edge_count(), 0);
    }

    #[test]
    fn add_undirected_stores_both_arcs() {
        let mut g = EdgeList::new(3);
        g.add_undirected(0, 1).unwrap();
        assert_eq!(g.nnz(), 2);
        assert!(g.arcs().contains(&(0, 1)));
        assert!(g.arcs().contains(&(1, 0)));
    }

    #[test]
    fn add_undirected_self_loop_single_arc() {
        let mut g = EdgeList::new(3);
        g.add_undirected(2, 2).unwrap();
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.self_loop_count(), 1);
        assert_eq!(g.undirected_edge_count(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = EdgeList::new(2);
        assert!(matches!(
            g.add_arc(0, 2),
            Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 })
        ));
        assert!(matches!(
            g.add_arc(5, 0),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        ));
    }

    #[test]
    fn from_arcs_validates() {
        assert!(EdgeList::from_arcs(2, vec![(0, 1), (1, 0)]).is_ok());
        assert!(EdgeList::from_arcs(2, vec![(0, 3)]).is_err());
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut g = EdgeList::from_arcs(3, vec![(1, 0), (0, 1), (1, 0), (2, 2)]).unwrap();
        g.sort_dedup();
        assert_eq!(g.arcs(), &[(0, 1), (1, 0), (2, 2)]);
    }

    #[test]
    fn symmetrize_adds_reverses() {
        let mut g = EdgeList::from_arcs(3, vec![(0, 1), (1, 2), (2, 2)]).unwrap();
        assert!(!g.is_symmetric());
        g.symmetrize();
        assert!(g.is_symmetric());
        assert_eq!(g.arcs(), &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 2)]);
    }

    #[test]
    fn undirected_edge_count_with_loops() {
        let mut g = EdgeList::new(4);
        g.add_undirected(0, 1).unwrap();
        g.add_undirected(1, 2).unwrap();
        g.add_undirected(3, 3).unwrap();
        g.sort_dedup();
        assert_eq!(g.undirected_edge_count(), 3);
        assert_eq!(g.nnz(), 5);
    }

    #[test]
    fn add_full_self_loops_idempotent() {
        let mut g = EdgeList::from_arcs(3, vec![(0, 0), (0, 1), (1, 0)]).unwrap();
        g.add_full_self_loops();
        assert_eq!(g.self_loop_count(), 3);
        let before = g.clone();
        g.add_full_self_loops();
        assert_eq!(g, before);
    }

    #[test]
    fn remove_self_loops_then_loop_free() {
        let mut g = EdgeList::from_arcs(3, vec![(0, 0), (0, 1), (1, 0), (2, 2)]).unwrap();
        assert!(g.require_loop_free().is_err());
        g.remove_self_loops();
        assert!(g.require_loop_free().is_ok());
        assert_eq!(g.nnz(), 2);
    }

    #[test]
    fn undirected_edges_canonical() {
        let g = EdgeList::from_arcs(3, vec![(0, 1), (1, 0), (1, 1), (1, 2), (2, 1)]).unwrap();
        let edges: Vec<Arc> = g.undirected_edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 1), (1, 2)]);
    }

    #[test]
    fn relabel_drops_unmapped() {
        let g = EdgeList::from_arcs(4, vec![(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let map = vec![Some(0), Some(1), None, None];
        let h = g.relabel(&map, 2).unwrap();
        assert_eq!(h.n(), 2);
        assert_eq!(h.arcs(), &[(0, 1), (1, 0)]);
    }

    #[test]
    fn out_degrees_counts_row_sums() {
        let g = EdgeList::from_arcs(3, vec![(0, 1), (1, 0), (1, 2), (2, 1), (1, 1)]).unwrap();
        assert_eq!(g.out_degrees(), vec![1, 3, 1]);
    }

    #[test]
    fn from_undirected_pairs_builds_symmetric() {
        let g = EdgeList::from_undirected_pairs(4, &[(0, 1), (1, 2), (3, 3), (1, 0)]).unwrap();
        assert!(g.is_symmetric());
        assert_eq!(g.undirected_edge_count(), 3);
    }
}
