//! # kron-graph — graph substrate
//!
//! Foundation crate for the Kronecker ground-truth library: compact graph
//! representations ([`EdgeList`], [`CsrGraph`]), file IO, structural
//! operations (symmetrization, self-loop management, induced subgraphs,
//! largest connected component), deterministic seeded generators (cliques,
//! paths, Erdős–Rényi, Barabási–Albert, stochastic block models, R-MAT),
//! and connectivity/degree utilities.
//!
//! ## Conventions
//!
//! * Vertex ids are `u64`, 0-based and dense in `0..n`.
//! * Undirected graphs store **both arcs** `(u, v)` and `(v, u)`; a self
//!   loop is the single arc `(v, v)`.
//! * `nnz` counts stored arcs (= nonzeros of the adjacency matrix);
//!   `undirected_edge_count` counts unordered edges, with a self loop
//!   contributing one edge.
//! * The degree of `v` is its adjacency-row sum: each incident edge
//!   contributes 1, including a self loop (matching the paper's `d = A·1`).

pub mod arena;
pub mod connectivity;
pub mod csr;
pub mod degree;
pub mod edge_list;
pub mod generators;
pub mod io;
pub mod ops;
pub mod parallel;
pub mod shard;
pub mod union_find;

pub use arena::Arena;
pub use csr::CsrGraph;
pub use edge_list::EdgeList;

/// Vertex identifier: 0-based, dense in `0..n`.
pub type VertexId = u64;

/// A directed arc `(source, target)`.
pub type Arc = (VertexId, VertexId);

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An arc references a vertex id `>= n`.
    VertexOutOfRange { vertex: VertexId, n: u64 },
    /// The operation requires an undirected (symmetric) graph.
    NotUndirected { missing_reverse: Arc },
    /// The operation requires a loop-free graph.
    HasSelfLoop { vertex: VertexId },
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A file being parsed is malformed.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with n={n}")
            }
            GraphError::NotUndirected { missing_reverse: (u, v) } => {
                write!(f, "graph is not undirected: arc ({u},{v}) has no reverse")
            }
            GraphError::HasSelfLoop { vertex } => {
                write!(f, "graph has a self loop at vertex {vertex}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
