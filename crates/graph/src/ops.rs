//! Structural graph operations: induced subgraphs, largest connected
//! component extraction (with relabeling), disjoint unions.

use crate::connectivity::connected_components;
use crate::edge_list::EdgeList;
use crate::{CsrGraph, Result, VertexId};

/// The result of extracting a vertex-induced subgraph: the subgraph plus the
/// mapping from new ids back to original ids.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The relabeled subgraph (vertices `0..keep.len()`).
    pub graph: CsrGraph,
    /// `original_of[new_id] = old_id`.
    pub original_of: Vec<VertexId>,
}

/// Extracts the subgraph induced by `keep` (need not be sorted; duplicates
/// ignored), relabeling vertices to `0..k` in ascending original-id order.
pub fn induced_subgraph(g: &CsrGraph, keep: &[VertexId]) -> Result<InducedSubgraph> {
    let mut sorted: Vec<VertexId> = keep.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut map: Vec<Option<VertexId>> = vec![None; g.n() as usize];
    for (new_id, &old) in sorted.iter().enumerate() {
        map[old as usize] = Some(new_id as VertexId);
    }
    let list = g.to_edge_list().relabel(&map, sorted.len() as u64)?;
    Ok(InducedSubgraph { graph: CsrGraph::from_edge_list(&list), original_of: sorted })
}

/// Extracts the largest connected component as a relabeled graph.
pub fn largest_connected_component(g: &CsrGraph) -> Result<InducedSubgraph> {
    let comps = connected_components(g);
    match comps.largest() {
        Some(c) => induced_subgraph(g, &comps.members(c)),
        None => Ok(InducedSubgraph {
            graph: CsrGraph::from_arcs(0, vec![])?,
            original_of: vec![],
        }),
    }
}

/// Disjoint union: vertices of `b` are shifted by `a.n()`.
pub fn disjoint_union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let shift = a.n();
    let mut list = EdgeList::new(a.n() + b.n());
    for (u, v) in a.arcs() {
        list.add_arc(u, v).expect("arcs in range");
    }
    for (u, v) in b.arcs() {
        list.add_arc(u + shift, v + shift).expect("arcs in range");
    }
    CsrGraph::from_edge_list(&list)
}

/// Disjoint union of `k` copies of `g`.
pub fn disjoint_copies(g: &CsrGraph, k: u64) -> CsrGraph {
    let n = g.n();
    let mut list = EdgeList::new(n * k);
    for copy in 0..k {
        let shift = copy * n;
        for (u, v) in g.arcs() {
            list.add_arc(u + shift, v + shift).expect("arcs in range");
        }
    }
    CsrGraph::from_edge_list(&list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::clique;

    #[test]
    fn induced_subgraph_relabels() {
        // Path 0-1-2-3; keep {1,3} → no edges; keep {1,2} → one edge.
        let g = CsrGraph::from_arcs(
            4,
            vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)],
        )
        .unwrap();
        let sub = induced_subgraph(&g, &[3, 1]).unwrap();
        assert_eq!(sub.graph.n(), 2);
        assert_eq!(sub.graph.nnz(), 0);
        assert_eq!(sub.original_of, vec![1, 3]);

        let sub2 = induced_subgraph(&g, &[1, 2, 2]).unwrap();
        assert_eq!(sub2.graph.nnz(), 2);
        assert!(sub2.graph.has_arc(0, 1));
    }

    #[test]
    fn lcc_extracts_biggest() {
        // K3 plus an isolated edge.
        let mut arcs = clique(3).to_edge_list().into_arcs();
        arcs.extend([(3, 4), (4, 3)]);
        let g = CsrGraph::from_arcs(5, arcs).unwrap();
        let lcc = largest_connected_component(&g).unwrap();
        assert_eq!(lcc.graph.n(), 3);
        assert_eq!(lcc.graph.undirected_edge_count(), 3);
        assert_eq!(lcc.original_of, vec![0, 1, 2]);
    }

    #[test]
    fn lcc_of_empty_graph() {
        let g = CsrGraph::from_arcs(0, vec![]).unwrap();
        let lcc = largest_connected_component(&g).unwrap();
        assert_eq!(lcc.graph.n(), 0);
    }

    #[test]
    fn disjoint_union_shifts() {
        let a = clique(2);
        let b = clique(3);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.n(), 5);
        assert_eq!(u.undirected_edge_count(), 1 + 3);
        assert!(u.has_arc(0, 1));
        assert!(u.has_arc(2, 3));
        assert!(!u.has_arc(1, 2));
    }

    #[test]
    fn disjoint_copies_counts() {
        let g = clique(3);
        let u = disjoint_copies(&g, 4);
        assert_eq!(u.n(), 12);
        assert_eq!(u.undirected_edge_count(), 12);
        use crate::connectivity::connected_components;
        assert_eq!(connected_components(&u).count, 4);
    }
}
