//! Compressed sparse row (CSR) graph representation.
//!
//! [`CsrGraph`] is the immutable, query-oriented representation used by all
//! analytics: O(1) degree lookup, sorted neighbor slices, and
//! binary-search `has_arc`.

use std::sync::OnceLock;

use crate::edge_list::EdgeList;
use crate::parallel;
use crate::{Arc, GraphError, Result, VertexId};

/// An immutable graph in CSR form with sorted, deduplicated neighbor lists.
///
/// ```
/// use kron_graph::CsrGraph;
///
/// let g = CsrGraph::from_arcs(3, vec![(0, 2), (0, 1), (1, 0), (2, 0)]).unwrap();
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.degree(0), 2);
/// assert!(g.has_arc(2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: u64,
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    cache: CsrCache,
}

/// Lazily computed per-graph derived data. The graph is immutable, so the
/// cache is fill-once (`OnceLock`); it is deliberately invisible to
/// equality, cloning, and debug output — two graphs with the same
/// adjacency are the same graph whether or not their caches are warm.
#[derive(Default)]
struct CsrCache {
    /// Vertices sorted ascending by `(degree, id)` — the degree-rank
    /// permutation the triangle kernels orient edges by.
    degree_rank: OnceLock<Vec<VertexId>>,
    max_degree: OnceLock<u64>,
}

impl Clone for CsrCache {
    fn clone(&self) -> Self {
        // A clone starts cold; recomputing is cheaper than deep-copying
        // and keeps `clone` allocation-proportional to the adjacency.
        CsrCache::default()
    }
}

impl PartialEq for CsrCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for CsrCache {}

impl std::fmt::Debug for CsrCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CsrCache")
    }
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list (sorting and deduplicating arcs).
    pub fn from_edge_list(list: &EdgeList) -> Self {
        let _span = kron_obs::span::enter("graph/csr_from_edge_list");
        kron_obs::counter!("graph.csr_input_arcs").add(list.nnz() as u64);
        let n = list.n() as usize;
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in list.arcs() {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut targets = vec![0u64; list.nnz()];
        let mut cursor = counts.clone();
        for &(u, v) in list.arcs() {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        // Sort + dedup each row in place.
        let mut offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        for u in 0..n {
            let (start, end) = (counts[u], counts[u + 1]);
            let row = &mut targets[start..end];
            row.sort_unstable();
            let mut prev: Option<u64> = None;
            let mut kept = 0usize;
            for idx in 0..row.len() {
                let t = row[idx];
                if prev != Some(t) {
                    row[kept] = t;
                    kept += 1;
                    prev = Some(t);
                }
            }
            // Compact kept entries toward the global write cursor.
            for idx in 0..kept {
                targets[write + idx] = targets[start + idx];
            }
            write += kept;
            offsets[u + 1] = write;
        }
        targets.truncate(write);
        CsrGraph { n: n as u64, offsets, targets, cache: CsrCache::default() }
    }

    /// Builds directly from raw arcs.
    pub fn from_arcs(n: u64, arcs: Vec<Arc>) -> Result<Self> {
        Ok(Self::from_edge_list(&EdgeList::from_arcs(n, arcs)?))
    }

    /// Parallel [`CsrGraph::from_edge_list`]: same canonical CSR, built by
    /// `threads` workers (`None` = machine parallelism).
    ///
    /// A stable parallel counting sort: per-chunk degree histograms, a
    /// serial prefix-sum merge that turns the histograms into disjoint
    /// per-`(chunk, vertex)` scatter cursors, a contention-free parallel
    /// scatter, then a per-row sort/dedup pass with rows split across
    /// workers by arc weight. Because chunks are contiguous and stitched
    /// back in chunk order, the result is field-for-field identical to the
    /// sequential build.
    pub fn from_edge_list_threads(list: &EdgeList, threads: Option<usize>) -> Self {
        let t = parallel::num_threads(threads);
        if t <= 1 {
            return Self::from_edge_list(list);
        }
        let _span = kron_obs::span::enter("graph/csr_from_edge_list_threads");
        kron_obs::counter!("graph.csr_input_arcs").add(list.nnz() as u64);
        let n = list.n() as usize;
        let arcs = list.arcs();
        let m = arcs.len();

        // Phase 1: per-chunk histograms of source-vertex counts.
        let arc_ranges = parallel::chunk_ranges(m, t);
        let mut histos: Vec<Vec<usize>> = parallel::map_ranges(arc_ranges.clone(), |_, r| {
            let mut h = vec![0usize; n];
            for &(u, _) in &arcs[r] {
                h[u as usize] += 1;
            }
            h
        });

        // Phase 2 (serial): prefix-sum the histograms into row starts and
        // rewrite each histogram entry into that chunk's scatter cursor
        // for the vertex. Chunks of the same row get adjacent destination
        // sub-ranges in chunk order, which is exactly the order the
        // sequential scatter visits the arcs — a stable counting sort.
        let mut row_start = vec![0usize; n + 1];
        let mut cursor = 0usize;
        for v in 0..n {
            row_start[v] = cursor;
            for h in &mut histos {
                let c = h[v];
                h[v] = cursor;
                cursor += c;
            }
        }
        row_start[n] = cursor;
        debug_assert_eq!(cursor, m);

        // Phase 3: scatter targets through disjoint precomputed cursors.
        let mut targets = vec![0u64; m];
        {
            let writer = parallel::DisjointWriter::new(&mut targets);
            let writer = &writer;
            parallel::map_with_state(arc_ranges, histos, |_, r, mut cursors| {
                for &(u, v) in &arcs[r] {
                    let u = u as usize;
                    // SAFETY: phase 2 gave every (chunk, vertex) pair a
                    // private destination sub-range, so no two workers
                    // ever write the same index.
                    unsafe { writer.write(cursors[u], v) };
                    cursors[u] += 1;
                }
            });
        }

        // Phase 4: sort + dedup each row, rows balanced across workers by
        // arc weight. Each worker emits its rows' deduplicated entries
        // contiguously plus per-row kept counts.
        let row_ranges = parallel::split_by_weight(&row_start, t);
        let parts: Vec<(Vec<usize>, Vec<u64>)> = parallel::map_ranges(row_ranges, |_, rows| {
            let mut kept = Vec::with_capacity(rows.len());
            let mut local =
                Vec::with_capacity(row_start[rows.end] - row_start[rows.start]);
            let mut scratch: Vec<u64> = Vec::new();
            for v in rows {
                scratch.clear();
                scratch.extend_from_slice(&targets[row_start[v]..row_start[v + 1]]);
                scratch.sort_unstable();
                let before = local.len();
                let mut prev: Option<u64> = None;
                for &x in &scratch {
                    if prev != Some(x) {
                        local.push(x);
                        prev = Some(x);
                    }
                }
                kept.push(local.len() - before);
            }
            (kept, local)
        });

        // Phase 5 (serial): final offsets from the kept counts, then
        // ordered concatenation of the per-worker compacted rows.
        let mut offsets = vec![0usize; n + 1];
        let mut v = 0usize;
        let mut write = 0usize;
        for (kept, _) in &parts {
            for &k in kept {
                write += k;
                v += 1;
                offsets[v] = write;
            }
        }
        debug_assert!(m == 0 || v == n);
        let targets = parallel::concat_ordered(parts.into_iter().map(|(_, rows)| rows).collect());
        CsrGraph { n: n as u64, offsets, targets, cache: CsrCache::default() }
    }

    /// Parallel [`CsrGraph::from_arcs`] (`None` = machine parallelism).
    pub fn from_arcs_threads(n: u64, arcs: Vec<Arc>, threads: Option<usize>) -> Result<Self> {
        Ok(Self::from_edge_list_threads(&EdgeList::from_arcs(n, arcs)?, threads))
    }

    /// Builds from prebuilt canonical CSR parts: `offsets` must have
    /// `n + 1` entries starting at 0 and ending at `targets.len()`, and
    /// every row of `targets` must be strictly increasing with entries
    /// `< n`.
    ///
    /// This is the constructor for kernels that *synthesize* rows already
    /// in canonical order (direct Kronecker CSR synthesis emits each
    /// product row sorted and duplicate-free by construction), skipping
    /// the counting sort and per-row sort/dedup of [`from_edge_list`].
    /// The invariants are checked in debug builds; a release caller is
    /// trusted.
    ///
    /// [`from_edge_list`]: CsrGraph::from_edge_list
    pub fn from_sorted_parts(n: u64, offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        kron_obs::counter!("graph.csr_sorted_part_arcs").add(targets.len() as u64);
        debug_assert_eq!(offsets.len(), n as usize + 1, "offsets must have n + 1 entries");
        debug_assert_eq!(offsets.first(), Some(&0));
        debug_assert_eq!(offsets.last(), Some(&targets.len()));
        #[cfg(debug_assertions)]
        for v in 0..n as usize {
            debug_assert!(offsets[v] <= offsets[v + 1], "offsets not monotone at row {v}");
            let row = &targets[offsets[v]..offsets[v + 1]];
            for w in row.windows(2) {
                debug_assert!(w[0] < w[1], "row {v} not strictly increasing");
            }
            if let Some(&last) = row.last() {
                debug_assert!(last < n, "row {v} has out-of-range target {last}");
            }
        }
        CsrGraph { n, offsets, targets, cache: CsrCache::default() }
    }

    /// Row offsets (`n + 1` entries); `offsets[v]..offsets[v + 1]` indexes
    /// `v`'s neighbor slice within the target array.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The concatenated sorted neighbor rows (one entry per stored arc).
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Number of vertices.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of stored arcs (adjacency nonzeros).
    pub fn nnz(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbor slice of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree (row sum) of `v`; includes a self loop once.
    pub fn degree(&self, v: VertexId) -> u64 {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as u64
    }

    /// Degree vector for all vertices.
    pub fn degrees(&self) -> Vec<u64> {
        (0..self.n).map(|v| self.degree(v)).collect()
    }

    /// True when arc `(u, v)` is present (binary search).
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// True when `v` has a self loop.
    pub fn has_self_loop(&self, v: VertexId) -> bool {
        self.has_arc(v, v)
    }

    /// Scans row `v` for its diagonal entry without binary search; rows
    /// are sorted, so the scan stops at the first entry `≥ v`. One pass
    /// over the target array in total across all rows — cache-linear,
    /// unlike a per-vertex binary search.
    #[inline]
    fn row_has_loop(&self, v: usize) -> bool {
        let diag = v as u64;
        for &t in &self.targets[self.offsets[v]..self.offsets[v + 1]] {
            if t >= diag {
                return t == diag;
            }
        }
        false
    }

    /// Number of self loops in the graph.
    pub fn self_loop_count(&self) -> u64 {
        (0..self.n as usize).filter(|&v| self.row_has_loop(v)).count() as u64
    }

    /// True when every vertex has a self loop (`A ∘ I_A = I_A`).
    pub fn has_full_self_loops(&self) -> bool {
        (0..self.n as usize).all(|v| self.row_has_loop(v))
    }

    /// True when no self loop is present (`A ∘ I_A = O_A`).
    pub fn is_loop_free(&self) -> bool {
        (0..self.n as usize).all(|v| !self.row_has_loop(v))
    }

    /// Number of unordered edges; a self loop counts as one edge.
    pub fn undirected_edge_count(&self) -> u64 {
        let loops = self.self_loop_count();
        loops + (self.nnz() as u64 - loops) / 2
    }

    /// Checks symmetry; returns the first arc lacking a reverse on failure.
    pub fn check_undirected(&self) -> Result<()> {
        for u in 0..self.n {
            for &v in self.neighbors(u) {
                if !self.has_arc(v, u) {
                    return Err(GraphError::NotUndirected { missing_reverse: (u, v) });
                }
            }
        }
        Ok(())
    }

    /// True when the adjacency is symmetric.
    pub fn is_undirected(&self) -> bool {
        self.check_undirected().is_ok()
    }

    /// Iterates over all arcs in row-major order.
    pub fn arcs(&self) -> impl Iterator<Item = Arc> + '_ {
        (0..self.n).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates over canonical unordered edges (`u <= v`).
    pub fn undirected_edges(&self) -> impl Iterator<Item = Arc> + '_ {
        self.arcs().filter(|&(u, v)| u <= v)
    }

    /// Converts back to an edge list.
    pub fn to_edge_list(&self) -> EdgeList {
        EdgeList::from_arcs(self.n, self.arcs().collect())
            .expect("CSR arcs are in range by construction")
    }

    /// Returns a copy with a self loop on every vertex (the paper's `A + I`).
    pub fn with_full_self_loops(&self) -> CsrGraph {
        let mut list = self.to_edge_list();
        list.add_full_self_loops();
        CsrGraph::from_edge_list(&list)
    }

    /// Returns a copy with all self loops removed.
    pub fn without_self_loops(&self) -> CsrGraph {
        let mut list = self.to_edge_list();
        list.remove_self_loops();
        CsrGraph::from_edge_list(&list)
    }

    /// Maximum degree, or 0 for an empty graph. Computed once and cached;
    /// the graph is immutable, so the value can never go stale.
    pub fn max_degree(&self) -> u64 {
        *self
            .cache
            .max_degree
            .get_or_init(|| (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0))
    }

    /// The degree-rank permutation: vertices sorted ascending by
    /// `(degree, id)`, so `order[r]` is the vertex holding rank `r`.
    ///
    /// This is the ordering the Chiba–Nishizeki triangle kernels orient
    /// edges by and the bitmap tier packs neighbor bitmaps in. Computed
    /// once per graph and cached — repeated kernel invocations (and the
    /// path-selection heuristic) stop paying the `O(n log n)` sort per
    /// call.
    pub fn degree_rank_order(&self) -> &[VertexId] {
        self.cache.degree_rank.get_or_init(|| {
            let mut order: Vec<VertexId> = (0..self.n).collect();
            order.sort_unstable_by_key(|&v| (self.degree(v), v));
            order
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_arcs(3, vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.nnz(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degrees(), vec![2, 2, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn dedup_on_build() {
        let g = CsrGraph::from_arcs(2, vec![(0, 1), (0, 1), (1, 0)]).unwrap();
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn rows_sorted() {
        let g = CsrGraph::from_arcs(4, vec![(0, 3), (0, 1), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_arc_queries() {
        let g = triangle();
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(2, 0));
        assert!(!g.has_arc(0, 0));
    }

    #[test]
    fn undirected_checks() {
        assert!(triangle().is_undirected());
        let d = CsrGraph::from_arcs(2, vec![(0, 1)]).unwrap();
        assert!(!d.is_undirected());
        assert!(matches!(
            d.check_undirected(),
            Err(GraphError::NotUndirected { missing_reverse: (0, 1) })
        ));
    }

    #[test]
    fn self_loop_accounting() {
        let g = CsrGraph::from_arcs(3, vec![(0, 0), (1, 1), (0, 1), (1, 0)]).unwrap();
        assert_eq!(g.self_loop_count(), 2);
        assert!(g.has_self_loop(0));
        assert!(!g.has_self_loop(2));
        assert!(!g.has_full_self_loops());
        assert!(!g.is_loop_free());
        assert_eq!(g.undirected_edge_count(), 3);
    }

    #[test]
    fn full_self_loops_roundtrip() {
        let g = triangle();
        let h = g.with_full_self_loops();
        assert!(h.has_full_self_loops());
        assert_eq!(h.nnz(), g.nnz() + 3);
        let back = h.without_self_loops();
        assert_eq!(back, g);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = triangle();
        let list = g.to_edge_list();
        let g2 = CsrGraph::from_edge_list(&list);
        assert_eq!(g, g2);
    }

    #[test]
    fn undirected_edges_canonical() {
        let g = triangle();
        let edges: Vec<Arc> = g.undirected_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.undirected_edge_count(), 3);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Pseudo-random arcs with duplicates and self loops.
        let n = 97u64;
        let mut arcs = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 33) % n;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 33) % n;
            arcs.push((u, v));
        }
        let sequential = CsrGraph::from_arcs(n, arcs.clone()).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let parallel =
                CsrGraph::from_arcs_threads(n, arcs.clone(), Some(threads)).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
        let machine = CsrGraph::from_arcs_threads(n, arcs, None).unwrap();
        assert_eq!(machine, sequential);
    }

    #[test]
    fn parallel_build_skewed_star() {
        // One hub touching everything exercises split_by_weight balancing.
        let n = 64u64;
        let mut arcs: Vec<Arc> = (1..n).flat_map(|v| [(0, v), (v, 0)]).collect();
        arcs.push((0, 0));
        let sequential = CsrGraph::from_arcs(n, arcs.clone()).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel =
                CsrGraph::from_arcs_threads(n, arcs.clone(), Some(threads)).unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_empty_and_arcless() {
        for threads in [1usize, 2, 8] {
            let empty = CsrGraph::from_arcs_threads(0, vec![], Some(threads)).unwrap();
            assert_eq!(empty, CsrGraph::from_arcs(0, vec![]).unwrap());
            let arcless = CsrGraph::from_arcs_threads(5, vec![], Some(threads)).unwrap();
            assert_eq!(arcless, CsrGraph::from_arcs(5, vec![]).unwrap());
            assert_eq!(arcless.degree(3), 0);
        }
    }

    #[test]
    fn from_sorted_parts_matches_edge_list_build() {
        let g = triangle();
        let rebuilt = CsrGraph::from_sorted_parts(
            g.n(),
            g.offsets().to_vec(),
            g.arcs().map(|(_, v)| v).collect(),
        );
        assert_eq!(rebuilt, g);
        // Empty rows and an arc-free graph round-trip too.
        let sparse = CsrGraph::from_arcs(4, vec![(2, 0), (2, 3)]).unwrap();
        let rebuilt =
            CsrGraph::from_sorted_parts(4, sparse.offsets().to_vec(), vec![0, 3]);
        assert_eq!(rebuilt, sparse);
        let empty = CsrGraph::from_sorted_parts(0, vec![0], vec![]);
        assert_eq!(empty, CsrGraph::from_arcs(0, vec![]).unwrap());
    }

    #[test]
    fn loop_scans_match_binary_search() {
        // Mixed rows: loop first, loop mid-row, loop last, no loop.
        let arcs = vec![(0, 0), (0, 2), (1, 0), (1, 1), (1, 3), (2, 0), (2, 1), (2, 2), (3, 1)];
        let g = CsrGraph::from_arcs(4, arcs).unwrap();
        for v in 0..4 {
            assert_eq!(g.row_has_loop(v as usize), g.has_self_loop(v), "vertex {v}");
        }
        assert_eq!(g.self_loop_count(), 3);
        assert!(!g.has_full_self_loops());
        assert!(!g.is_loop_free());
        assert!(g.with_full_self_loops().has_full_self_loops());
        assert!(g.without_self_loops().is_loop_free());
    }

    #[test]
    fn degree_rank_order_is_cached_and_stable() {
        let g = CsrGraph::from_arcs(
            4,
            vec![(0, 1), (1, 0), (1, 2), (2, 1), (1, 3), (3, 1), (2, 3), (3, 2)],
        )
        .unwrap();
        // Degrees: [1, 3, 2, 2]; ties break by id.
        assert_eq!(g.degree_rank_order(), &[0, 2, 3, 1]);
        // Second call returns the same cached slice.
        let first = g.degree_rank_order().as_ptr();
        assert_eq!(g.degree_rank_order().as_ptr(), first);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.max_degree(), 3);
        // Clones compare equal regardless of cache warmth.
        let cold = g.clone();
        assert_eq!(cold, g);
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_arcs(3, vec![]).unwrap();
        assert_eq!(g.nnz(), 0);
        assert_eq!(g.degree(1), 0);
        assert!(g.is_undirected());
        assert!(g.is_loop_free());
        assert_eq!(g.max_degree(), 0);
    }
}
