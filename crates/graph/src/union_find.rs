//! Disjoint-set forest (union–find) and an alternative connected-
//! components implementation.
//!
//! The BFS labeling in [`crate::connectivity`] is the primary path; this
//! union–find version exists as an independently-implemented cross-check
//! (the two are compared in tests and in the property suite) and as a
//! building block for streaming/edge-at-a-time pipelines where BFS over a
//! finished CSR is not available — e.g. deciding connectivity while the
//! distributed generator is still emitting edges.

use crate::{CsrGraph, VertexId};

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        DisjointSets {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true when they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// True when `a` and `b` share a set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Dense component labels in `0..set_count()`, assigned in order of
    /// first appearance (matching the BFS labeling convention).
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.len();
        let mut map = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut labels = Vec::with_capacity(n);
        for x in 0..n as u32 {
            let root = self.find(x) as usize;
            if map[root] == u32::MAX {
                map[root] = next;
                next += 1;
            }
            labels.push(map[root]);
        }
        labels
    }
}

/// Connected components via union–find; label semantics identical to
/// [`crate::connectivity::connected_components`].
pub fn connected_components_uf(g: &CsrGraph) -> crate::connectivity::Components {
    let mut sets = DisjointSets::new(g.n() as usize);
    for (u, v) in g.arcs() {
        sets.union(u as u32, v as u32);
    }
    let labels = sets.labels();
    crate::connectivity::Components { labels, count: sets.set_count() as u32 }
}

/// Incremental connectivity over a stream of arcs (no graph needed).
pub fn components_of_arc_stream(
    n: u64,
    arcs: impl Iterator<Item = (VertexId, VertexId)>,
) -> usize {
    let mut sets = DisjointSets::new(n as usize);
    for (u, v) in arcs {
        sets.union(u as u32, v as u32);
    }
    sets.set_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;
    use crate::generators::{barabasi_albert, clique, disjoint_cliques, erdos_renyi};

    #[test]
    fn singleton_sets() {
        let mut s = DisjointSets::new(4);
        assert_eq!(s.set_count(), 4);
        assert!(!s.same_set(0, 1));
        assert_eq!(s.labels(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut s = DisjointSets::new(5);
        assert!(s.union(0, 1));
        assert!(s.union(1, 2));
        assert!(!s.union(0, 2), "already merged");
        assert_eq!(s.set_count(), 3);
        assert!(s.same_set(0, 2));
        assert!(!s.same_set(0, 3));
    }

    #[test]
    fn labels_first_appearance_order() {
        let mut s = DisjointSets::new(5);
        s.union(3, 4);
        s.union(1, 2);
        // Components by first appearance: {0}, {1,2}, {3,4}.
        assert_eq!(s.labels(), vec![0, 1, 1, 2, 2]);
    }

    #[test]
    fn matches_bfs_on_structured_graphs() {
        for g in [
            disjoint_cliques(4, 3),
            clique(7),
            barabasi_albert(60, 2, 3),
            CsrGraph::from_arcs(5, vec![]).unwrap(),
        ] {
            assert_eq!(connected_components_uf(&g), connected_components(&g), "{g:?}");
        }
    }

    #[test]
    fn matches_bfs_on_random_graphs() {
        for seed in 0..10 {
            let g = erdos_renyi(40, 0.03, seed);
            let bfs = connected_components(&g);
            let uf = connected_components_uf(&g);
            assert_eq!(uf, bfs, "seed {seed}");
        }
    }

    #[test]
    fn arc_stream_counting() {
        // Stream the arcs of 3 disjoint cliques.
        let g = disjoint_cliques(3, 4);
        assert_eq!(components_of_arc_stream(g.n(), g.arcs()), 3);
        // No arcs: all singletons.
        assert_eq!(components_of_arc_stream(5, std::iter::empty()), 5);
    }

    use crate::CsrGraph;

    #[test]
    fn empty_structure() {
        let s = DisjointSets::new(0);
        assert!(s.is_empty());
        assert_eq!(s.set_count(), 0);
    }
}
