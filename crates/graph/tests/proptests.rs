//! Property tests for the graph substrate: representation invariants,
//! IO roundtrips, and cross-checked algorithms.

use proptest::prelude::*;

use kron_graph::connectivity::connected_components;
use kron_graph::union_find::connected_components_uf;
use kron_graph::{CsrGraph, EdgeList};

/// Strategy: an arbitrary arc list over `n` vertices (may be directed,
/// have loops, duplicates).
fn arcs(n: u64, max_arcs: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_arcs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSR invariants: sorted unique rows, degree = row length, nnz sums.
    #[test]
    fn csr_invariants(raw in arcs(12, 60)) {
        let g = CsrGraph::from_arcs(12, raw.clone()).unwrap();
        let mut total = 0usize;
        for u in 0..12u64 {
            let row = g.neighbors(u);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {u} not sorted-unique");
            prop_assert_eq!(g.degree(u) as usize, row.len());
            total += row.len();
        }
        prop_assert_eq!(g.nnz(), total);
        // Membership agrees with the (deduplicated) input.
        let mut dedup = raw;
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(g.nnz(), dedup.len());
        for (u, v) in dedup {
            prop_assert!(g.has_arc(u, v));
        }
    }

    /// EdgeList symmetrize makes is_symmetric true and is idempotent.
    #[test]
    fn symmetrize_idempotent(raw in arcs(10, 40)) {
        let mut list = EdgeList::from_arcs(10, raw).unwrap();
        list.symmetrize();
        prop_assert!(list.is_symmetric());
        let once = list.clone();
        list.symmetrize();
        prop_assert_eq!(list, once);
    }

    /// Text and binary IO are exact roundtrips.
    #[test]
    fn io_roundtrips(raw in arcs(16, 50)) {
        let list = EdgeList::from_arcs(16, raw).unwrap();
        // Text.
        let mut buf = Vec::new();
        kron_graph::io::write_text(&mut buf, &list).unwrap();
        let parsed = kron_graph::io::read_text(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(&parsed, &list);
        // Binary.
        let bytes = kron_graph::io::encode_binary(&list);
        let decoded = kron_graph::io::decode_binary(&bytes).unwrap();
        prop_assert_eq!(&decoded, &list);
    }

    /// Degree sum equals arc count (handshake, arc form).
    #[test]
    fn handshake_lemma(raw in arcs(14, 70)) {
        let g = CsrGraph::from_arcs(14, raw).unwrap();
        let sum: u64 = g.degrees().iter().sum();
        prop_assert_eq!(sum as usize, g.nnz());
    }

    /// BFS and union–find component labelings agree exactly.
    #[test]
    fn components_bfs_equals_union_find(raw in arcs(20, 50)) {
        // Components need symmetric input.
        let mut list = EdgeList::from_arcs(20, raw).unwrap();
        list.symmetrize();
        let g = CsrGraph::from_edge_list(&list);
        prop_assert_eq!(connected_components(&g), connected_components_uf(&g));
    }

    /// Full self loops: add then remove is the identity on loop-free
    /// graphs; with_full_self_loops sets exactly n loops.
    #[test]
    fn self_loop_roundtrip(raw in arcs(10, 40)) {
        let mut list = EdgeList::from_arcs(10, raw).unwrap();
        list.remove_self_loops();
        list.sort_dedup();
        let g = CsrGraph::from_edge_list(&list);
        let looped = g.with_full_self_loops();
        prop_assert_eq!(looped.self_loop_count(), 10);
        prop_assert_eq!(looped.nnz(), g.nnz() + 10);
        prop_assert_eq!(looped.without_self_loops(), g);
    }

    /// Induced subgraph keeps exactly the arcs among kept vertices.
    #[test]
    fn induced_subgraph_membership(
        raw in arcs(12, 60),
        keep_mask in proptest::collection::vec(proptest::bool::ANY, 12),
    ) {
        let g = CsrGraph::from_arcs(12, raw).unwrap();
        let keep: Vec<u64> = (0..12u64).filter(|&v| keep_mask[v as usize]).collect();
        let sub = kron_graph::ops::induced_subgraph(&g, &keep).unwrap();
        prop_assert_eq!(sub.graph.n() as usize, keep.len());
        for (new_u, &old_u) in sub.original_of.iter().enumerate() {
            for (new_v, &old_v) in sub.original_of.iter().enumerate() {
                prop_assert_eq!(
                    sub.graph.has_arc(new_u as u64, new_v as u64),
                    g.has_arc(old_u, old_v),
                    "({}, {})",
                    old_u,
                    old_v
                );
            }
        }
    }

    /// Largest connected component really is the largest.
    #[test]
    fn lcc_is_maximal(raw in arcs(15, 30)) {
        let mut list = EdgeList::from_arcs(15, raw).unwrap();
        list.symmetrize();
        let g = CsrGraph::from_edge_list(&list);
        let comps = connected_components(&g);
        let lcc = kron_graph::ops::largest_connected_component(&g).unwrap();
        let max_size = comps.sizes().into_iter().max().unwrap_or(0);
        prop_assert_eq!(lcc.graph.n(), max_size);
    }
}
