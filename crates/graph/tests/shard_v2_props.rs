//! Property tests for the KRSH v2 delta-varint codec and its pipeline:
//! LEB128 encode→decode identity with canonical-form (overlong)
//! rejection, v2 run roundtrips over random sorted streams, a corruption
//! corpus aimed at the v2-specific surfaces (truncation mid-varint,
//! forged payload/footer lengths, bit flips in the compressed region,
//! forged footers), and cross-version equivalence: v1, v2, and mixed run
//! sets must merge to identical streams, and the single-pass external
//! build must emit files byte-identical to the two-pass reference.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use kron_graph::shard::{
    build_external_csr, build_external_csr_two_pass, decode_varint, encode_varint, merge_shards,
    ShardReader, ShardVersion, ShardWriter, Varint, MAX_VARINT_BYTES,
};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case scratch path (proptest shrinks rerun cases, so paths
/// must never be shared between runs of the same test).
fn scratch(tag: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kron_shard_v2_props_{}_{tag}_{id}", std::process::id()))
}

/// Strategy: a sorted, possibly-duplicated arc list over `n` vertices.
fn sorted_run(n: u64, max: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..n, 0..n), 0..max).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// Writes one finished shard in the given format and returns its path.
fn write_run(tag: &str, n: u64, arcs: &[(u64, u64)], version: ShardVersion) -> PathBuf {
    let path = scratch(tag);
    let mut w = ShardWriter::with_buffer_versioned(&path, n, 4096, version).expect("create shard");
    for &(u, v) in arcs {
        w.push(u, v).expect("sorted in-range push");
    }
    let info = w.finish().expect("finish shard");
    assert_eq!(info.arcs, arcs.len() as u64);
    path
}

/// Drains a reader to completion; any error is returned, not panicked.
fn drain(path: &PathBuf) -> kron_graph::Result<Vec<(u64, u64)>> {
    let mut reader = ShardReader::with_buffer(path, 256)?;
    let mut out = Vec::new();
    while let Some(arc) = reader.next_arc()? {
        out.push(arc);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LEB128 identity: every u64 encodes to ≤ MAX_VARINT_BYTES bytes and
    /// decodes back exactly, with the declared length.
    #[test]
    fn varint_roundtrip(value in 0u64..=u64::MAX) {
        let mut buf = Vec::new();
        let len = encode_varint(value, &mut buf);
        prop_assert_eq!(len, buf.len());
        prop_assert!(len <= MAX_VARINT_BYTES);
        match decode_varint(&buf).expect("own encoding decodes") {
            Varint::Value { value: got, len: got_len } => {
                prop_assert_eq!(got, value);
                prop_assert_eq!(got_len, len);
            }
            Varint::NeedMore => prop_assert!(false, "complete encoding reported NeedMore"),
        }
    }

    /// A concatenated varint stream decodes value-for-value: the decoder
    /// never consumes into the next value.
    #[test]
    fn varint_stream_roundtrip(values in proptest::collection::vec(0u64..=u64::MAX, 0..50)) {
        let mut buf = Vec::new();
        for &v in &values {
            encode_varint(v, &mut buf);
        }
        let mut at = 0usize;
        let mut decoded = Vec::new();
        while at < buf.len() {
            match decode_varint(&buf[at..]).expect("stream decodes") {
                Varint::Value { value, len } => {
                    decoded.push(value);
                    at += len;
                }
                Varint::NeedMore => {
                    prop_assert!(false, "complete stream reported NeedMore at {at}");
                }
            }
        }
        prop_assert_eq!(decoded, values);
    }

    /// Non-canonical (overlong) encodings are rejected: padding a value
    /// with a redundant continuation group must fail, never silently
    /// decode to the same value.
    #[test]
    fn varint_overlong_rejected(value in 0u64..=u64::MAX) {
        let mut buf = Vec::new();
        let len = encode_varint(value, &mut buf);
        if len < MAX_VARINT_BYTES {
            // Set the continuation bit on the final group and append a
            // zero group — the classic overlong form of the same value.
            buf[len - 1] |= 0x80;
            buf.push(0x00);
            prop_assert!(decode_varint(&buf).is_err(), "overlong encoding accepted");
        }
    }

    /// A truncated varint inside an otherwise well-framed window reports
    /// NeedMore (short window) — while a 10-byte window with no
    /// terminator is an error, not a request for more input.
    #[test]
    fn varint_truncation_is_needmore(value in (1u64 << 14)..=u64::MAX) {
        let mut buf = Vec::new();
        let len = encode_varint(value, &mut buf);
        prop_assert!(len >= 3);
        for cut in 0..len.min(MAX_VARINT_BYTES - 1) {
            match decode_varint(&buf[..cut]) {
                Ok(Varint::NeedMore) => {}
                Ok(Varint::Value { .. }) => {
                    prop_assert!(false, "truncated to {cut}/{len} bytes yet decoded");
                }
                Err(_) => prop_assert!(false, "short window must be NeedMore, not error"),
            }
        }
        let no_terminator = [0x80u8; MAX_VARINT_BYTES];
        prop_assert!(decode_varint(&no_terminator).is_err());
    }

    /// v2 encode→decode identity, and the compressed payload beats v1's
    /// 16 bytes/arc on any non-trivial stream.
    #[test]
    fn v2_roundtrip_identity(arcs in sorted_run(64, 300)) {
        let p2 = write_run("rt2", 64, &arcs, ShardVersion::V2);
        let reader = ShardReader::open(&p2).expect("open v2 shard");
        prop_assert_eq!(reader.version(), ShardVersion::V2);
        prop_assert_eq!(reader.arcs_total(), arcs.len() as u64);
        drop(reader);
        prop_assert_eq!(drain(&p2).expect("drain v2 shard"), arcs.clone());
        if arcs.len() >= 16 {
            let p1 = write_run("rt1", 64, &arcs, ShardVersion::V1);
            let b1 = std::fs::metadata(&p1).unwrap().len();
            let b2 = std::fs::metadata(&p2).unwrap().len();
            prop_assert!(b2 < b1, "v2 file {b2}B not smaller than v1 {b1}B for {} arcs", arcs.len());
            std::fs::remove_file(&p1).ok();
        }
        std::fs::remove_file(&p2).ok();
    }

    /// Every strict truncation of a v2 file — including cuts landing
    /// mid-varint in the payload or footer — is a clean error.
    #[test]
    fn v2_truncation_rejected(arcs in sorted_run(32, 100), cut in 0usize..100_000) {
        let path = write_run("trunc", 32, &arcs, ShardVersion::V2);
        let full = std::fs::metadata(&path).unwrap().len();
        let keep = (cut as u64) % full;
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(keep).unwrap();
        drop(file);
        prop_assert!(drain(&path).is_err(), "truncated to {keep}/{full} bytes yet accepted");
        std::fs::remove_file(&path).ok();
    }

    /// Single-bit flips anywhere in a v2 file never panic and never
    /// over-allocate: either a clean error, or — when validity is
    /// preserved — a stream still satisfying every format invariant.
    #[test]
    fn v2_bit_flips_never_panic(arcs in sorted_run(32, 80), pos in 0usize..100_000, bit in 0u8..8) {
        let path = write_run("flip", 32, &arcs, ShardVersion::V2);
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(decoded) = drain(&path) {
            let reader = ShardReader::open(&path).expect("drain succeeded");
            prop_assert_eq!(decoded.len() as u64, reader.arcs_total());
            prop_assert!(decoded.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(decoded.iter().all(|&(u, v)| u < 32 && v < 32));
        }
        std::fs::remove_file(&path).ok();
    }

    /// Forged header lengths — arc count (bytes 16..24), payload_len
    /// (24..32), footer_len (32..40) — are rejected by the framing
    /// cross-check before any count-proportional allocation.
    #[test]
    fn v2_forged_lengths_rejected(
        arcs in sorted_run(32, 80),
        field in 0usize..3,
        forged in 0u64..=u64::MAX,
    ) {
        let path = write_run("forge", 32, &arcs, ShardVersion::V2);
        let mut bytes = std::fs::read(&path).unwrap();
        let off = 16 + field * 8;
        let original = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        bytes[off..off + 8].copy_from_slice(&forged.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let result = drain(&path);
        if forged == original {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(
                result.is_err(),
                "forged field {field} = {forged} (real {original}) accepted"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// v1, v2, and mixed run sets over the same arcs merge to identical
    /// streams — the merge is format-blind.
    #[test]
    fn cross_version_merge_equivalence(
        arcs in sorted_run(48, 200),
        assign in proptest::collection::vec(0usize..3, 200),
    ) {
        let mut runs: [Vec<(u64, u64)>; 3] = Default::default();
        for (i, &arc) in arcs.iter().enumerate() {
            runs[assign[i]].push(arc);
        }
        let merged = |versions: [ShardVersion; 3]| {
            let paths: Vec<PathBuf> = runs
                .iter()
                .zip(versions)
                .map(|(run, ver)| write_run("xver", 48, run, ver))
                .collect();
            let readers: Vec<ShardReader> =
                paths.iter().map(|p| ShardReader::with_buffer(p, 256).unwrap()).collect();
            let mut out = Vec::new();
            merge_shards(readers, |u, v| out.push((u, v))).expect("merge");
            for p in &paths {
                std::fs::remove_file(p).ok();
            }
            out
        };
        use ShardVersion::{V1, V2};
        let all_v1 = merged([V1, V1, V1]);
        let all_v2 = merged([V2, V2, V2]);
        let mixed = merged([V1, V2, V1]);
        let mut want = arcs;
        want.dedup();
        prop_assert_eq!(&all_v1, &want, "v1 merge differs from the deduplicated union");
        prop_assert_eq!(&all_v2, &want, "v2 merge differs from the deduplicated union");
        prop_assert_eq!(&mixed, &want, "mixed-version merge differs");
    }

    /// The single-pass external build writes files byte-identical to the
    /// two-pass reference, for pure-v1, pure-v2, and mixed run sets.
    #[test]
    fn one_pass_build_matches_two_pass(
        arcs in sorted_run(40, 150),
        assign in proptest::collection::vec(0usize..3, 150),
        dup_mask in proptest::collection::vec(proptest::bool::ANY, 150),
        versions in proptest::collection::vec(0usize..2, 3),
    ) {
        let mut runs: [Vec<(u64, u64)>; 3] = Default::default();
        for (i, &arc) in arcs.iter().enumerate() {
            runs[assign[i]].push(arc);
            if dup_mask[i] {
                runs[(assign[i] + 1) % 3].push(arc);
            }
        }
        let paths: Vec<PathBuf> = runs
            .iter()
            .enumerate()
            .map(|(i, run)| {
                let ver = if versions[i] == 0 { ShardVersion::V1 } else { ShardVersion::V2 };
                write_run("onep", 40, run, ver)
            })
            .collect();
        let one = scratch("one.krsc");
        let two = scratch("two.krsc");
        let s1 = build_external_csr(&paths, &one, 512).expect("single-pass build");
        let s2 = build_external_csr_two_pass(&paths, &two, 512).expect("two-pass build");
        prop_assert_eq!(s1.arcs, s2.arcs);
        prop_assert_eq!(s1.merge_passes, 1);
        prop_assert_eq!(s2.merge_passes, 2);
        let b1 = std::fs::read(&one).expect("read single-pass output");
        let b2 = std::fs::read(&two).expect("read two-pass output");
        prop_assert_eq!(b1, b2, "single-pass KRSC bytes differ from two-pass");
        for p in paths.iter().chain([&one, &two]) {
            std::fs::remove_file(p).ok();
        }
    }
}
