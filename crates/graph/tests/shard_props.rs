//! Property tests for the KRSH sorted-run shard format: encode→decode
//! identity, a mutation corpus (truncation / bit flips / trailing bytes /
//! forged counts) that must always be rejected with an error — never a
//! panic or an attacker-sized allocation — and the external build's
//! bit-equality with the in-memory CSR path across random run splits.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use kron_graph::shard::{merge_shards, ShardReader, ShardWriter};
use kron_graph::{CsrGraph, EdgeList};

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case scratch path (proptest shrinks rerun cases, so paths
/// must never be shared between runs of the same test).
fn scratch(tag: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("kron_shard_props_{}_{tag}_{id}.krsh", std::process::id()))
}

/// Strategy: a sorted, possibly-duplicated arc list over `n` vertices —
/// exactly what a spilled run may legally contain.
fn sorted_run(n: u64, max: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..n, 0..n), 0..max).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// Writes one finished shard file holding `arcs` and returns its path.
fn write_run(tag: &str, n: u64, arcs: &[(u64, u64)]) -> PathBuf {
    let path = scratch(tag);
    let mut w = ShardWriter::create(&path, n).expect("create shard");
    for &(u, v) in arcs {
        w.push(u, v).expect("sorted in-range push");
    }
    let info = w.finish().expect("finish shard");
    assert_eq!(info.arcs, arcs.len() as u64);
    path
}

/// Drains a reader to completion; any error is returned, not panicked.
fn drain(path: &PathBuf) -> kron_graph::Result<Vec<(u64, u64)>> {
    let mut reader = ShardReader::open(path)?;
    let mut out = Vec::new();
    while let Some(arc) = reader.next_arc()? {
        out.push(arc);
    }
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode→decode identity: a written run reads back arc-for-arc, and
    /// the validated header agrees with what was pushed.
    #[test]
    fn roundtrip_identity(arcs in sorted_run(32, 200)) {
        let path = write_run("rt", 32, &arcs);
        let reader = ShardReader::open(&path).expect("open finished shard");
        prop_assert_eq!(reader.n(), 32);
        prop_assert_eq!(reader.arcs_total(), arcs.len() as u64);
        drop(reader);
        prop_assert_eq!(drain(&path).expect("drain finished shard"), arcs);
        std::fs::remove_file(&path).ok();
    }

    /// Every strict truncation of a valid shard is rejected at open —
    /// the declared count can no longer match the file length.
    #[test]
    fn truncation_rejected(arcs in sorted_run(16, 60), cut in 0usize..1000) {
        let path = write_run("trunc", 16, &arcs);
        let full = std::fs::metadata(&path).unwrap().len();
        let keep = (cut as u64) % full; // strictly shorter than the file
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(keep).unwrap();
        drop(file);
        prop_assert!(drain(&path).is_err(), "truncated to {keep}/{full} bytes yet accepted");
        std::fs::remove_file(&path).ok();
    }

    /// Trailing garbage after the declared run is rejected at open.
    #[test]
    fn trailing_bytes_rejected(arcs in sorted_run(16, 60), extra in proptest::collection::vec(0u8..=255, 1..64)) {
        let path = write_run("trail", 16, &arcs);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&extra);
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(drain(&path).is_err(), "{} trailing bytes yet accepted", extra.len());
        std::fs::remove_file(&path).ok();
    }

    /// Single-bit flips anywhere in the file never panic and never
    /// over-allocate: decode either fails with an error, or — when the
    /// flip happens to preserve validity — yields a run that still
    /// satisfies every format invariant (sorted, in range, declared
    /// length).
    #[test]
    fn bit_flips_never_panic(arcs in sorted_run(16, 40), pos in 0usize..10_000, bit in 0u8..8) {
        let path = write_run("flip", 16, &arcs);
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(decoded) = drain(&path) {
            // The reader itself re-validates order and range per arc, so a
            // successful drain *is* the invariant proof; cross-check the
            // length against the (mutated) header anyway.
            let reader = ShardReader::open(&path).expect("drain succeeded");
            prop_assert_eq!(decoded.len() as u64, reader.arcs_total());
            prop_assert!(decoded.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(decoded.iter().all(|&(u, v)| u < 16 && v < 16));
        }
        std::fs::remove_file(&path).ok();
    }

    /// A forged arc count is rejected by the length cross-check before
    /// any allocation proportional to it can happen — including counts
    /// near `u64::MAX` whose byte length overflows.
    #[test]
    fn forged_counts_rejected(arcs in sorted_run(16, 40), forged in 0u64..=u64::MAX) {
        let path = write_run("forge", 16, &arcs);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[16..24].copy_from_slice(&forged.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let result = drain(&path);
        if forged == arcs.len() as u64 {
            prop_assert!(result.is_ok());
        } else {
            prop_assert!(result.is_err(), "forged count {forged} (real {}) accepted", arcs.len());
        }
        std::fs::remove_file(&path).ok();
    }

    /// `CsrGraph::from_shards` over an arbitrary split of the arcs into
    /// runs — including duplicates across runs — is equal by bits to
    /// `CsrGraph::from_edge_list` over the union.
    #[test]
    fn from_shards_matches_from_edge_list(
        arcs in sorted_run(24, 150),
        assign in proptest::collection::vec(0usize..4, 150),
        dup_mask in proptest::collection::vec(proptest::bool::ANY, 150),
    ) {
        // Deal each arc to a run; some arcs land in a second run too, so
        // the merge's cross-run dedup is exercised.
        let mut runs: [Vec<(u64, u64)>; 4] = Default::default();
        for (i, &arc) in arcs.iter().enumerate() {
            runs[assign[i]].push(arc);
            if dup_mask[i] {
                runs[(assign[i] + 1) % 4].push(arc);
            }
        }
        let paths: Vec<PathBuf> = runs
            .iter()
            .map(|run| write_run("split", 24, run))
            .collect();
        let external = CsrGraph::from_shards(&paths, 512).expect("from_shards");
        let reference =
            CsrGraph::from_edge_list(&EdgeList::from_arcs(24, arcs.clone()).unwrap());
        prop_assert_eq!(&external, &reference, "external and in-memory CSR builds disagree");
        // The merge stream itself matches the deduplicated union.
        let readers: Vec<ShardReader> =
            paths.iter().map(|p| ShardReader::open(p).unwrap()).collect();
        let mut merged = Vec::new();
        merge_shards(readers, |u, v| merged.push((u, v))).expect("merge");
        let mut want = arcs;
        want.dedup();
        prop_assert_eq!(merged, want);
        for p in &paths {
            std::fs::remove_file(p).ok();
        }
    }
}
