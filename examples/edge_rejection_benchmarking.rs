//! §IV-C as a benchmark author would use it: generate a good-faith
//! benchmark family `G_C ⊃ G_{C,.99} ⊃ G_{C,.95} ⊃ G_{C,.90}` jointly,
//! with known expected local triangle statistics, so a triangle-counting
//! implementation under test can be validated without the Kronecker
//! structure being trivially exploitable.
//!
//! Run with: `cargo run --release --example edge_rejection_benchmarking`

use kronecker::core::generate::materialize;
use kronecker::core::rejection::{joint_global_triangles, RejectionFamily};
use kronecker::core::triangles::TriangleOracle;
use kronecker::core::KroneckerPair;
use kronecker::datasets::gnutella::{synthetic_gnutella, GnutellaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = GnutellaConfig::tiny();
    cfg.vertices = 200;
    let a = synthetic_gnutella(&cfg);
    let pair = KroneckerPair::with_full_self_loops(a.clone(), a)?;
    let oracle = TriangleOracle::new(&pair)?;
    let tau = oracle.global_triangles();
    println!(
        "G_C: {} vertices, {} arcs, {} triangles (tau from Cor. 1, sublinear)",
        pair.n_c(),
        pair.nnz_c(),
        tau
    );

    // The benchmark family: ν = 1 is G_C itself.
    let family = RejectionFamily::new(&pair, 2019);
    let thresholds = [1.0, 0.99, 0.95, 0.90];

    // One generation pass sizes every member...
    let arc_counts = family.arc_counts(&thresholds);
    // ...and one enumeration pass over G_C counts every member's triangles.
    let c = materialize(&pair);
    let tri_counts = joint_global_triangles(&c, family.hash(), &thresholds);

    println!("\n  nu     arcs (expected)          triangles (expected nu^3*tau)");
    for (idx, &nu) in thresholds.iter().enumerate() {
        println!(
            "  {:.2}   {:>9} ({:>11.0})   {:>9} ({:>13.0})",
            nu,
            arc_counts[idx],
            family.expected_arcs(nu),
            tri_counts[idx],
            nu.powi(3) * tau as f64
        );
    }

    // A solver validated on G_{C,ν} cannot shortcut through the Kronecker
    // formulas — but the *benchmark author* still has ground truth: the
    // exact counts above, plus per-vertex expectations ν³ t_p.
    let sample_vertex = pair.n_c() / 3;
    let t_p = oracle.vertex_triangles_of(sample_vertex)?;
    println!(
        "\nvertex {sample_vertex}: t_p = {t_p} in G_C; E[t_p] in G_C,0.95 = {:.1}",
        family.expected_vertex_triangles(t_p, 0.95)
    );
    Ok(())
}
