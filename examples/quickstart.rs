//! Quickstart: build a Kronecker product from two factors read from edge
//! lists, query ground truth, and materialize the product to a file —
//! the paper's end-to-end workflow in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use kronecker::analytics::distance::UNREACHABLE;
use kronecker::core::closeness::closeness_fast;
use kronecker::core::distance::DistanceOracle;
use kronecker::core::triangles::TriangleOracle;
use kronecker::core::{degree, generate, KroneckerPair};
use kronecker::graph::generators::{clique, cycle};
use kronecker::graph::io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The generator's contract (§III): factors arrive as edge-list files.
    // Write two small factors, then read them back.
    let dir = std::env::temp_dir().join("kron_quickstart");
    std::fs::create_dir_all(&dir)?;
    io::write_text_file(dir.join("a.txt"), &clique(4).to_edge_list())?;
    io::write_text_file(dir.join("b.txt"), &cycle(5).to_edge_list())?;

    let a = kronecker::graph::CsrGraph::from_edge_list(&io::read_text_file(dir.join("a.txt"))?);
    let b = kronecker::graph::CsrGraph::from_edge_list(&io::read_text_file(dir.join("b.txt"))?);

    // C = (A + I) ⊗ (B + I): the paper's dense, connected construction.
    let pair = KroneckerPair::with_full_self_loops(a, b)?;
    println!("C = (K4+I) ⊗ (C5+I)");
    println!("  n_C  = {}", pair.n_c());
    println!("  arcs = {}", pair.nnz_c());
    println!("  m_C  = {}", pair.undirected_edge_count_c());

    // Ground truth without ever building C.
    let p = 7;
    println!("\nground truth at vertex {p}:");
    println!("  degree      = {}", degree::degree_of(&pair, p)?);

    let triangles = TriangleOracle::new(&pair)?;
    println!("  triangles   = {}", triangles.vertex_triangles_of(p)?);
    println!("  global tris = {}", triangles.global_triangles());

    let distances = DistanceOracle::new(&pair)?;
    let ecc = distances.eccentricity_of(p)?;
    assert_ne!(ecc, UNREACHABLE);
    println!("  eccentricity = {ecc}");
    println!("  diameter(C)  = {}", distances.diameter());
    println!("  closeness    = {:.3}", closeness_fast(&distances, p)?);

    // Materialize C (fine at this scale) and spot-check the formulas.
    let c = generate::materialize(&pair);
    assert_eq!(c.degree(p), degree::degree_of(&pair, p)?);
    assert_eq!(
        kronecker::analytics::triangles::vertex_triangles(&c).per_vertex[p as usize],
        triangles.vertex_triangles_of(p)?
    );
    io::write_text_file(dir.join("c.txt"), &c.to_edge_list())?;
    println!("\nmaterialized C written to {}", dir.join("c.txt").display());
    println!("formula values verified against the materialized graph");
    Ok(())
}
