//! Kronecker powers `A^{⊗K}`: the recursive construction behind
//! Graph500-style generators, with the paper's two-factor ground-truth
//! formulas composed K-fold (generalized Cor. 1 / Cor. 4 / Thm. 4 —
//! see `kron-core::power`).
//!
//! Run with: `cargo run --release --example kronecker_power`

use kronecker::core::power::KroneckerChain;
use kronecker::core::SelfLoopMode;
use kronecker::datasets::gnutella::{synthetic_gnutella, GnutellaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small scale-free seed graph, cubed.
    let mut cfg = GnutellaConfig::tiny();
    cfg.vertices = 120;
    let a = synthetic_gnutella(&cfg);
    println!(
        "seed factor A: {} vertices, {} edges",
        a.n(),
        a.undirected_edge_count()
    );

    let chain = KroneckerChain::power(a, 3, SelfLoopMode::FullBoth)?;
    println!(
        "C = (A+I)^(⊗3): {} vertices, {} arcs — implicit only",
        chain.n_c(),
        chain.nnz_c()
    );

    // All ground truth from three tiny factors:
    println!("diameter(C) = {} (max-law over 3 factors)", chain.diameter()?);

    let hist = chain.degree_histogram();
    println!(
        "degree histogram: {} distinct values, max degree {}",
        hist.distinct(),
        hist.max().expect("nonempty")
    );

    // Per-vertex ground truth at a few sample vertices.
    println!("\nsample vertices (generalized Cor. 1 triangles, K-way closeness):");
    for p in [0, chain.n_c() / 3, chain.n_c() - 1] {
        println!(
            "  v{p}: degree = {}, triangles = {}, ecc = {}, closeness = {:.1}",
            chain.degree_of(p)?,
            chain.vertex_triangles_full_of(p)?,
            chain.eccentricity_of(p)?,
            chain.closeness_of(p)?
        );
    }

    // Sanity: Σ degree = arcs.
    let total: u128 = hist.iter().map(|(v, c)| v as u128 * c as u128).sum();
    assert_eq!(total, chain.nnz_c());
    println!("\nΣ degrees = nnz_C checks out: {total}");
    Ok(())
}
