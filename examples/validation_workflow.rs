//! The paper's full validation story, end to end:
//!
//! 1. generate `C = (A+I) ⊗ (B+I)` with the distributed engine;
//! 2. run *distributed analytics* over the partitioned store
//!    (degrees, triangle counting à la the paper's ref. [23]);
//! 3. check every result against factor-side ground truth —
//!    the workflow §I motivates for HPC algorithm validation.
//!
//! Run with: `cargo run --release --example validation_workflow`

use kronecker::core::triangles::TriangleOracle;
use kronecker::core::KroneckerPair;
use kronecker::dist::generator::{generate_distributed, DistConfig};
use kronecker::dist::owner::VertexBlockOwner;
use kronecker::dist::triangle_count::distributed_triangle_count;
use kronecker::dist::validate::validate_against_ground_truth;
use kronecker::graph::generators::{rmat, RmatConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two R-MAT factors with different seeds (the paper's CORAL2 recipe).
    let a = rmat(&RmatConfig::graph500(6, 1));
    let b = rmat(&RmatConfig::graph500(6, 2));
    let pair = KroneckerPair::with_full_self_loops(a, b)?;
    println!(
        "C = (A+I) ⊗ (B+I): {} vertices, {} arcs",
        pair.n_c(),
        pair.nnz_c()
    );

    // Ground truth from the factors — this is what we validate AGAINST.
    let oracle = TriangleOracle::new(&pair)?;
    let tau_truth = oracle.global_triangles();
    println!("ground truth: tau_C = {tau_truth} (Cor. 1, factor-side)");

    // Distributed generation across simulated ranks.
    let ranks = 4;
    let result = generate_distributed(&pair, &DistConfig::new(ranks));
    println!(
        "\ngenerated on {ranks} ranks: {} arcs, remote fraction {:.2}",
        result.stats.total_stored(),
        result.stats.remote_fraction()
    );

    // Validation 1: arc conservation + per-vertex degrees vs d_A ⊗ d_B.
    let report = validate_against_ground_truth(&pair, &result);
    println!(
        "degree validation: {} stored vs {} expected, {} mismatches → {}",
        report.stored_arcs,
        report.expected_arcs,
        report.degree_mismatches,
        if report.passed { "PASS" } else { "FAIL" }
    );
    assert!(report.passed);

    // Validation 2: distributed triangle counting (row-push algorithm)
    // vs the Kronecker formula.
    let owner = VertexBlockOwner::new(pair.n_c(), ranks);
    let tau_distributed = distributed_triangle_count(&result, &owner) as u128;
    println!(
        "triangle validation: distributed count {tau_distributed} vs formula {tau_truth} → {}",
        if tau_distributed == tau_truth { "PASS" } else { "FAIL" }
    );
    assert_eq!(tau_distributed, tau_truth);

    println!("\nthe distributed implementation is validated at a scale where");
    println!("no trusted sequential reference would need to be run at all.");
    Ok(())
}
