//! The paper's §VI-A experiment: plant 33 communities in a 20,000-vertex
//! factor, square it into a 400-million-vertex product with 1089
//! communities, and compute every community's exact internal/external
//! edge density from the factors (Thm. 6) — the 83-billion-edge product
//! never exists in memory.
//!
//! Run with: `cargo run --release --example community_density`

use kronecker::analytics::community::partition_profiles;
use kronecker::core::community::{cor6_theta, CommunityOracle};
use kronecker::core::KroneckerPair;
use kronecker::datasets::graphchallenge::groundtruth_scaled;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vertices = if std::env::args().any(|a| a == "--paper") { 20_000 } else { 4_000 };
    let ds = groundtruth_scaled(vertices, 0xC0FFEE);
    let k = ds.communities;
    println!(
        "factor A: {} vertices, {} edges, {k} planted communities",
        ds.graph.n(),
        ds.graph.undirected_edge_count()
    );

    let profiles_a = partition_profiles(&ds.graph, &ds.labels, k);
    let pair = KroneckerPair::with_full_self_loops(ds.graph.clone(), ds.graph.clone())?;
    println!(
        "product C: {} vertices, {} edges, {} communities (Def. 16)",
        pair.n_c(),
        pair.undirected_edge_count_c(),
        k * k
    );

    let oracle = CommunityOracle::new(&pair)?;
    let profiles_c = oracle.kron_partition_profiles(&ds.labels, k, &ds.labels, k);

    // Fig. 2's claim: product communities keep high ρ_in / low ρ_out.
    let range = |vals: Vec<f64>| {
        let lo = vals.iter().copied().fold(f64::MAX, f64::min);
        let hi = vals.iter().copied().fold(f64::MIN, f64::max);
        (lo, hi)
    };
    let (a_in_lo, a_in_hi) = range(profiles_a.iter().map(|p| p.rho_in).collect());
    let (a_out_lo, a_out_hi) = range(profiles_a.iter().map(|p| p.rho_out).collect());
    let (c_in_lo, c_in_hi) = range(profiles_c.iter().map(|p| p.rho_in).collect());
    let (c_out_lo, c_out_hi) = range(profiles_c.iter().map(|p| p.rho_out).collect());
    println!("\n            rho_in                rho_out");
    println!("  A   [{a_in_lo:.2e}, {a_in_hi:.2e}]   [{a_out_lo:.2e}, {a_out_hi:.2e}]");
    println!("  C   [{c_in_lo:.2e}, {c_in_hi:.2e}]   [{c_out_lo:.2e}, {c_out_hi:.2e}]");

    // Cor. 6's guarantee, checked for every one of the k² communities.
    let mut worst_margin = f64::MAX;
    for (ai, pa) in profiles_a.iter().enumerate() {
        for (bi, pb) in profiles_a.iter().enumerate() {
            let pc = &profiles_c[ai * k + bi];
            let bound = cor6_theta(pa.size, pb.size) * pa.rho_in * pb.rho_in;
            worst_margin = worst_margin.min(pc.rho_in - bound);
        }
    }
    assert!(worst_margin >= -1e-12, "Cor. 6 violated by {worst_margin}");
    println!(
        "\nCor. 6 held for all {} communities (worst margin {:.2e})",
        k * k,
        worst_margin
    );
    Ok(())
}
