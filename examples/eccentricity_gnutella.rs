//! The paper's §V-A experiment as a library user would run it: take a
//! scale-free peer-to-peer-style factor `A`, form `C = A ⊗ A` with full
//! self loops, and recover the exact eccentricity distribution of the
//! multi-million-vertex `C` from factor-side BFS only (Cor. 4).
//!
//! Run with: `cargo run --release --example eccentricity_gnutella`

use kronecker::analytics::distance::all_eccentricities;
use kronecker::analytics::Histogram;
use kronecker::core::distance::eccentricity_histogram_from_factors;
use kronecker::core::KroneckerPair;
use kronecker::datasets::gnutella::{synthetic_gnutella, GnutellaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The gnutella08 stand-in at reduced scale (see DESIGN.md §4); pass
    // `--paper` for the full 6.3K-vertex factor.
    let config = if std::env::args().any(|a| a == "--paper") {
        GnutellaConfig::full()
    } else {
        GnutellaConfig::scaled()
    };
    let a = synthetic_gnutella(&config);
    println!(
        "factor A: {} vertices, {} edges (undirected LCC, loop-free)",
        a.n(),
        a.undirected_edge_count()
    );

    let pair = KroneckerPair::with_full_self_loops(a.clone(), a)?;
    println!(
        "product C = A ⊗ A: {} vertices, {} edges — never materialized",
        pair.n_c(),
        pair.undirected_edge_count_c()
    );

    // One exact eccentricity pass over the factor...
    let ecc_a = all_eccentricities(pair.a());
    let hist_a = Histogram::from_values(ecc_a.iter().map(|&e| e as u64));
    println!("\neccentricity distribution of A:\n{hist_a}");

    // ...yields the exact distribution over all n_A² product vertices.
    let hist_c = eccentricity_histogram_from_factors(&ecc_a, &ecc_a);
    println!("eccentricity distribution of C (Cor. 4, exact):\n{hist_c}");

    assert_eq!(hist_c.total(), pair.n_c());
    assert_eq!(hist_c.max(), hist_a.max(), "diam(C) = max(diam A, diam A)");
    println!(
        "diameter(C) = {} (= diameter(A), per Cor. 3)",
        hist_c.max().expect("nonempty")
    );
    Ok(())
}
