//! §III end-to-end: distribute the factors over simulated ranks, generate
//! `C_r = A_r ⊗ B_r` concurrently with asynchronous edge exchange, and
//! verify the union of the per-rank stores against sequential generation.
//! Compares the 1D scheme (replicated `B`) with Rem. 1's 2D scheme.
//!
//! Run with: `cargo run --release --example distributed_generation`

use kronecker::core::{generate, KroneckerPair, SelfLoopMode};
use kronecker::dist::generator::{generate_distributed, DistConfig, StorageMode};
use kronecker::dist::partition::PartitionScheme;
use kronecker::graph::generators::{rmat, RmatConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two Graph500-style R-MAT factors with different seeds — the same
    // recipe as the paper's trillion-edge CORAL2 run, at laptop scale.
    let a = rmat(&RmatConfig::graph500(7, 1));
    let b = rmat(&RmatConfig::graph500(7, 2));
    let pair = KroneckerPair::new(a, b, SelfLoopMode::AsIs)?;
    println!(
        "factors: |E_A| = {} arcs, |E_B| = {} arcs → C has {} arcs",
        pair.a().nnz(),
        pair.b().nnz(),
        pair.nnz_c()
    );

    let reference = {
        let mut list = generate::materialize(&pair).to_edge_list();
        list.sort_dedup();
        list
    };

    for (name, scheme) in [("1D (§III)", PartitionScheme::OneD), ("2D (Rem. 1)", PartitionScheme::TwoD)] {
        for ranks in [2usize, 8] {
            let mut config = DistConfig::new(ranks);
            config.scheme = scheme;
            config.storage = StorageMode::Store;
            let result = generate_distributed(&pair, &config);
            let stats = &result.stats;
            assert_eq!(result.union(pair.n_c()), reference, "distributed != sequential");
            println!(
                "\n{name}, R = {ranks}: {} arcs in {:.3}s ({:.2e} arcs/s)",
                stats.total_generated(),
                stats.elapsed_secs,
                stats.arcs_per_sec()
            );
            println!(
                "  max factor arcs/rank = {}, remote fraction = {:.2}, \
                 gen imbalance = {:.2}, storage imbalance = {:.2}",
                stats.max_factor_arcs(),
                stats.remote_fraction(),
                stats.generation_imbalance(),
                stats.storage_imbalance()
            );
        }
    }
    println!("\nall distributed runs matched sequential generation exactly");
    Ok(())
}
