//! `kron` — command-line Kronecker graph generator with ground truth.
//!
//! The paper's contribution (a) as a tool: "reads two factor graphs A and
//! B from file and efficiently produces the nonstochastic Kronecker graph
//! C = A ⊗ B", plus ground-truth queries, dataset generation, and stats.
//!
//! ```text
//! kron generate A.txt B.txt --out c.txt [--self-loops full] [--ranks 4] [--scheme 2d] [--count-only]
//! kron ground-truth A.txt B.txt [--self-loops full] [--vertex P]
//! kron stats G.txt
//! kron dataset gnutella --out a.txt [--vertices N] [--seed S]
//! kron dataset groundtruth20000 --out a.txt [--vertices N] [--seed S]
//! kron spectrum A.txt B.txt [--self-loops full]
//! kron power A.txt K [--self-loops full] [--vertex P]
//! kron validate A.txt B.txt [--ranks R] [--self-loops full]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use kronecker::core::distance::DistanceOracle;
use kronecker::core::triangles::TriangleOracle;
use kronecker::core::{degree, spectrum, KroneckerPair, SelfLoopMode};
use kronecker::dist::generator::{generate_distributed, DistConfig, StorageMode};
use kronecker::dist::partition::PartitionScheme;
use kronecker::graph::{io, CsrGraph};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  kron generate <A> <B> [--out FILE] [--self-loops full|asis] [--ranks N]
                        [--scheme 1d|2d] [--count-only] [--binary]
  kron ground-truth <A> <B> [--self-loops full|asis] [--vertex P]
  kron stats <GRAPH>
  kron dataset <gnutella|groundtruth20000> --out FILE [--vertices N] [--seed S]
  kron spectrum <A> <B> [--self-loops full|asis]
  kron power <A> <K> [--self-loops full|asis] [--vertex P]
  kron validate <A> <B> [--ranks R] [--self-loops full|asis]";

/// Parsed flags: positional arguments plus `--key value` / `--flag` pairs.
struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: &[&str] = &["--count-only", "--binary"];

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&arg.as_str()) {
                options.insert(key.to_string(), "true".to_string());
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                options.insert(key.to_string(), value.clone());
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok(Args { positional, options })
}

impl Args {
    fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    fn parse_option<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.option(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{key}: {raw:?}")),
        }
    }

    fn self_loop_mode(&self) -> Result<SelfLoopMode, String> {
        match self.option("self-loops").unwrap_or("asis") {
            "full" => Ok(SelfLoopMode::FullBoth),
            "asis" => Ok(SelfLoopMode::AsIs),
            other => Err(format!("unknown --self-loops mode {other:?} (use full|asis)")),
        }
    }
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let list = if path.ends_with(".bin") {
        io::read_binary_file(path)
    } else {
        io::read_text_file(path)
    }
    .map_err(|e| format!("reading {path}: {e}"))?;
    Ok(CsrGraph::from_edge_list(&list))
}

fn load_pair(args: &Args) -> Result<KroneckerPair, String> {
    let [a_path, b_path] = args.positional.get(0..2).and_then(|s| <&[String; 2]>::try_from(s).ok())
        .ok_or("expected factor files <A> <B>")?;
    let a = load_graph(a_path)?;
    let b = load_graph(b_path)?;
    KroneckerPair::new(a, b, args.self_loop_mode()?).map_err(|e| e.to_string())
}

fn run(raw: &[String]) -> Result<(), String> {
    let command = raw.first().map(String::as_str).ok_or("no command given")?;
    let args = parse_args(&raw[1..])?;
    match command {
        "generate" => cmd_generate(&args),
        "ground-truth" => cmd_ground_truth(&args),
        "stats" => cmd_stats(&args),
        "dataset" => cmd_dataset(&args),
        "spectrum" => cmd_spectrum(&args),
        "power" => cmd_power(&args),
        "validate" => cmd_validate(&args),
        "--help" | "help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let pair = load_pair(args)?;
    let ranks: usize = args.parse_option("ranks", 1)?;
    let scheme = match args.option("scheme").unwrap_or("1d") {
        "1d" => PartitionScheme::OneD,
        "2d" => PartitionScheme::TwoD,
        other => return Err(format!("unknown --scheme {other:?} (use 1d|2d)")),
    };
    let count_only = args.option("count-only").is_some();

    eprintln!(
        "C: n = {}, arcs = {}, undirected edges = {}",
        pair.n_c(),
        pair.nnz_c(),
        pair.undirected_edge_count_c()
    );

    let mut config = DistConfig::new(ranks);
    config.scheme = scheme;
    config.storage = if count_only { StorageMode::CountOnly } else { StorageMode::Store };
    let result = generate_distributed(&pair, &config);
    let stats = &result.stats;
    eprintln!(
        "generated {} arcs on {ranks} rank(s) in {:.3}s ({:.2e} arcs/s), remote fraction {:.2}",
        stats.total_generated(),
        stats.elapsed_secs,
        stats.arcs_per_sec(),
        stats.remote_fraction()
    );

    if count_only {
        println!("{}", stats.total_generated());
        return Ok(());
    }
    let out = args.option("out").ok_or("--out FILE required unless --count-only")?;
    let union = result.union(pair.n_c());
    if args.option("binary").is_some() || out.ends_with(".bin") {
        io::write_binary_file(out, &union).map_err(|e| e.to_string())?;
    } else {
        io::write_text_file(out, &union).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote {} arcs to {out}", union.nnz());
    Ok(())
}

fn cmd_ground_truth(args: &Args) -> Result<(), String> {
    let pair = load_pair(args)?;
    println!("n_C    = {}", pair.n_c());
    println!("arcs_C = {}", pair.nnz_c());
    println!("m_C    = {}", pair.undirected_edge_count_c());

    match TriangleOracle::new(&pair) {
        Ok(tri) => println!("tau_C  = {}", tri.global_triangles()),
        Err(e) => println!("tau_C  unavailable: {e}"),
    }
    match DistanceOracle::new(&pair) {
        Ok(dist) => {
            println!("diam_C = {}", dist.diameter());
            println!("eccentricity histogram of C:");
            print!("{}", dist.eccentricity_histogram());
        }
        Err(e) => println!("distance ground truth unavailable: {e}"),
    }

    if let Some(raw) = args.option("vertex") {
        let p: u64 = raw.parse().map_err(|_| format!("invalid vertex {raw:?}"))?;
        println!("\nvertex {p}:");
        println!("  degree = {}", degree::degree_of(&pair, p).map_err(|e| e.to_string())?);
        if let Ok(tri) = TriangleOracle::new(&pair) {
            println!(
                "  triangles = {}",
                tri.vertex_triangles_of(p).map_err(|e| e.to_string())?
            );
        }
        if let Ok(dist) = DistanceOracle::new(&pair) {
            println!(
                "  eccentricity = {}",
                dist.eccentricity_of(p).map_err(|e| e.to_string())?
            );
            println!(
                "  closeness = {:.4}",
                kronecker::core::closeness::closeness_fast(&dist, p)
                    .map_err(|e| e.to_string())?
            );
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a graph file")?;
    let g = load_graph(path)?;
    println!("vertices  = {}", g.n());
    println!("arcs      = {}", g.nnz());
    println!("edges     = {}", g.undirected_edge_count());
    println!("loops     = {}", g.self_loop_count());
    println!("undirected = {}", g.is_undirected());
    let ds = kronecker::graph::degree::degree_stats(&g);
    println!("degree    = min {}, mean {:.2}, max {}", ds.min, ds.mean, ds.max);
    if g.is_undirected() {
        let tri = kronecker::analytics::triangles::vertex_triangles(&g);
        println!("triangles = {}", tri.global);
        let comps = kronecker::graph::connectivity::connected_components(&g);
        println!("components = {}", comps.count);
        if comps.count == 1 && g.n() > 1 {
            let summary = kronecker::analytics::distance::distance_summary(&g);
            println!("diameter  = {}", summary.diameter);
            println!("radius    = {}", summary.radius);
        }
    }
    Ok(())
}

fn cmd_dataset(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or("expected a dataset name")?;
    let out = args.option("out").ok_or("--out FILE required")?;
    let seed: u64 = args.parse_option("seed", 0xC0FFEE)?;
    let graph = match name.as_str() {
        "gnutella" => {
            let mut cfg = kronecker::datasets::gnutella::GnutellaConfig::full();
            cfg.vertices = args.parse_option("vertices", cfg.vertices)?;
            cfg.seed = seed;
            kronecker::datasets::gnutella::synthetic_gnutella(&cfg)
        }
        "groundtruth20000" => {
            let vertices: u64 = args.parse_option("vertices", 20_000)?;
            let ds = kronecker::datasets::graphchallenge::groundtruth_scaled(vertices, seed);
            if let Some(label_path) = args.option("labels") {
                let text: String = ds
                    .labels
                    .iter()
                    .enumerate()
                    .map(|(v, l)| format!("{v} {l}\n"))
                    .collect();
                std::fs::write(label_path, text).map_err(|e| e.to_string())?;
                eprintln!("wrote community labels to {label_path}");
            }
            ds.graph
        }
        other => return Err(format!("unknown dataset {other:?}")),
    };
    io::write_text_file(out, &graph.to_edge_list()).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {name}: {} vertices, {} edges to {out}",
        graph.n(),
        graph.undirected_edge_count()
    );
    Ok(())
}

fn cmd_spectrum(args: &Args) -> Result<(), String> {
    let pair = load_pair(args)?;
    let spec = spectrum::kronecker_spectrum(&pair).map_err(|e| e.to_string())?;
    let distinct = spectrum::distinct_eigenvalue_count(&spec, 1e-9);
    println!("eigenvalues of C = {}", spec.len());
    println!("distinct (1e-9)  = {distinct}");
    println!(
        "spectral radius  = {:.6}",
        spectrum::spectral_radius(&pair).map_err(|e| e.to_string())?
    );
    println!("min eigenvalue   = {:.6}", spec.first().expect("nonempty"));
    println!("max eigenvalue   = {:.6}", spec.last().expect("nonempty"));
    Ok(())
}

fn cmd_power(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a factor file")?;
    let k: usize = args
        .positional
        .get(1)
        .ok_or("expected the power K")?
        .parse()
        .map_err(|_| "K must be a positive integer".to_string())?;
    let a = load_graph(path)?;
    let chain = kronecker::core::power::KroneckerChain::power(a, k, args.self_loop_mode()?)
        .map_err(|e| e.to_string())?;
    println!("C = A^(x{k})");
    println!("n_C    = {}", chain.n_c());
    println!("arcs_C = {}", chain.nnz_c());
    match chain.diameter() {
        Ok(d) => println!("diam_C = {d}"),
        Err(e) => println!("diam_C unavailable: {e}"),
    }
    let hist = chain.degree_histogram();
    println!(
        "degree histogram: {} distinct values over {} vertices",
        hist.distinct(),
        hist.total()
    );
    if let Some(raw) = args.option("vertex") {
        let p: u64 = raw.parse().map_err(|_| format!("invalid vertex {raw:?}"))?;
        println!("\nvertex {p}:");
        println!("  degree = {}", chain.degree_of(p).map_err(|e| e.to_string())?);
        let triangles = match args.self_loop_mode()? {
            SelfLoopMode::AsIs => chain.vertex_triangles_of(p),
            SelfLoopMode::FullBoth => chain.vertex_triangles_full_of(p),
        };
        match triangles {
            Ok(t) => println!("  triangles = {t}"),
            Err(e) => println!("  triangles unavailable: {e}"),
        }
        match chain.eccentricity_of(p) {
            Ok(e) => println!("  eccentricity = {e}"),
            Err(e) => println!("  eccentricity unavailable: {e}"),
        }
        match chain.closeness_of(p) {
            Ok(z) => println!("  closeness = {z:.4}"),
            Err(e) => println!("  closeness unavailable: {e}"),
        }
    }
    Ok(())
}

/// Runs the paper's end-to-end validation workflow: distributed
/// generation, then distributed degree and triangle analytics checked
/// against the factor-side ground truth.
fn cmd_validate(args: &Args) -> Result<(), String> {
    let pair = load_pair(args)?;
    let ranks: usize = args.parse_option("ranks", 4)?;
    let result = generate_distributed(&pair, &DistConfig::new(ranks));
    println!(
        "generated {} arcs on {ranks} rank(s) in {:.3}s",
        result.stats.total_stored(),
        result.stats.elapsed_secs
    );

    let report =
        kronecker::dist::validate::validate_against_ground_truth(&pair, &result);
    println!(
        "degree validation: {} mismatches over {} vertices → {}",
        report.degree_mismatches,
        pair.n_c(),
        if report.passed { "PASS" } else { "FAIL" }
    );

    let owner = kronecker::dist::owner::VertexBlockOwner::new(pair.n_c(), ranks);
    let counted =
        kronecker::dist::triangle_count::distributed_triangle_count(&result, &owner);
    match TriangleOracle::new(&pair) {
        Ok(oracle) => {
            let truth = oracle.global_triangles();
            let ok = counted as u128 == truth;
            println!(
                "triangle validation: distributed {counted} vs formula {truth} → {}",
                if ok { "PASS" } else { "FAIL" }
            );
            if !ok || !report.passed {
                return Err("validation failed".to_string());
            }
        }
        Err(e) => println!("triangle ground truth unavailable: {e}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_positional_and_flags() {
        let args = parse_args(&strs(&["a.txt", "b.txt", "--ranks", "4", "--count-only"])).unwrap();
        assert_eq!(args.positional, vec!["a.txt", "b.txt"]);
        assert_eq!(args.option("ranks"), Some("4"));
        assert_eq!(args.option("count-only"), Some("true"));
        assert_eq!(args.parse_option::<usize>("ranks", 1).unwrap(), 4);
        assert_eq!(args.parse_option::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parse_rejects_dangling_flag() {
        assert!(parse_args(&strs(&["--out"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_value() {
        let args = parse_args(&strs(&["--ranks", "many"])).unwrap();
        assert!(args.parse_option::<usize>("ranks", 1).is_err());
    }

    #[test]
    fn self_loop_mode_parsing() {
        let full = parse_args(&strs(&["--self-loops", "full"])).unwrap();
        assert_eq!(full.self_loop_mode().unwrap(), SelfLoopMode::FullBoth);
        let asis = parse_args(&strs(&[])).unwrap();
        assert_eq!(asis.self_loop_mode().unwrap(), SelfLoopMode::AsIs);
        let bad = parse_args(&strs(&["--self-loops", "nope"])).unwrap();
        assert!(bad.self_loop_mode().is_err());
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&strs(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn end_to_end_generate_and_stats() {
        use kronecker::graph::generators::clique;
        let dir = std::env::temp_dir().join("kron_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("a.txt");
        let b_path = dir.join("b.txt");
        let c_path = dir.join("c.txt");
        io::write_text_file(&a_path, &clique(3).to_edge_list()).unwrap();
        io::write_text_file(&b_path, &clique(4).to_edge_list()).unwrap();

        run(&strs(&[
            "generate",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap(),
            "--out",
            c_path.to_str().unwrap(),
            "--ranks",
            "2",
            "--scheme",
            "2d",
        ]))
        .unwrap();

        let c = load_graph(c_path.to_str().unwrap()).unwrap();
        assert_eq!(c.n(), 12);
        assert_eq!(c.nnz(), 6 * 12);

        run(&strs(&["stats", c_path.to_str().unwrap()])).unwrap();
        run(&strs(&[
            "ground-truth",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap(),
            "--self-loops",
            "full",
            "--vertex",
            "3",
        ]))
        .unwrap();
        run(&strs(&[
            "spectrum",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap(),
        ]))
        .unwrap();
    }

    #[test]
    fn end_to_end_power() {
        use kronecker::graph::generators::clique;
        let dir = std::env::temp_dir().join("kron_cli_power_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("a.txt");
        io::write_text_file(&a_path, &clique(3).to_edge_list()).unwrap();
        run(&strs(&[
            "power",
            a_path.to_str().unwrap(),
            "3",
            "--self-loops",
            "full",
            "--vertex",
            "5",
        ]))
        .unwrap();
        assert!(run(&strs(&["power", a_path.to_str().unwrap(), "zero"])).is_err());
        assert!(run(&strs(&["power", a_path.to_str().unwrap()])).is_err());
    }

    #[test]
    fn end_to_end_validate() {
        use kronecker::graph::generators::clique;
        let dir = std::env::temp_dir().join("kron_cli_validate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a_path = dir.join("a.txt");
        let b_path = dir.join("b.txt");
        io::write_text_file(&a_path, &clique(3).to_edge_list()).unwrap();
        io::write_text_file(&b_path, &clique(4).to_edge_list()).unwrap();
        run(&strs(&[
            "validate",
            a_path.to_str().unwrap(),
            b_path.to_str().unwrap(),
            "--ranks",
            "3",
            "--self-loops",
            "full",
        ]))
        .unwrap();
    }

    #[test]
    fn end_to_end_dataset() {
        let dir = std::env::temp_dir().join("kron_cli_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("g.txt");
        run(&strs(&[
            "dataset",
            "gnutella",
            "--out",
            out.to_str().unwrap(),
            "--vertices",
            "200",
            "--seed",
            "5",
        ]))
        .unwrap();
        let g = load_graph(out.to_str().unwrap()).unwrap();
        assert!(g.n() > 100);
        assert!(g.is_undirected());
    }
}
