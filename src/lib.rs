//! # kronecker — distributed Kronecker graph generation with ground truth
//!
//! A Rust reproduction of *"Distributed Kronecker Graph Generation with
//! Ground Truth of Many Graph Properties"* (Steil, Priest, Sanders,
//! Pearce, La Fond, Iwabuchi; IPDPS-W 2019): nonstochastic Kronecker
//! product graphs `C = A ⊗ B` generated at scale from two small factors,
//! with *exact* ground truth for degrees, triangle participation,
//! clustering coefficients, distances, eccentricity, diameter, closeness
//! centrality, and community structure — all computed from factor-sized
//! state.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`graph`] — graph substrate (CSR, edge lists, IO, generators)
//! * [`linalg`] — explicit Kronecker/Hadamard algebra (the test oracle)
//! * [`analytics`] — direct reference algorithms (BFS, triangles, …)
//! * [`core`] — the implicit Kronecker graph and every ground-truth formula
//! * [`dist`] — the simulated distributed generator (§III)
//! * [`datasets`] — stand-ins for the paper's datasets
//!
//! ## Quickstart
//!
//! ```
//! use kronecker::core::{KroneckerPair, SelfLoopMode};
//! use kronecker::core::triangles::TriangleOracle;
//! use kronecker::graph::generators::clique;
//!
//! // C = (K4 + I) ⊗ (K4 + I): 16 vertices, dense Kronecker structure.
//! let pair = KroneckerPair::with_full_self_loops(clique(4), clique(4)).unwrap();
//! assert_eq!(pair.n_c(), 16);
//!
//! // Ground-truth triangles at vertex 0 straight from the factors.
//! let oracle = TriangleOracle::new(&pair).unwrap();
//! let t0 = oracle.vertex_triangles_of(0).unwrap();
//! assert!(t0 > 0);
//! ```

pub use kron_analytics as analytics;
pub use kron_core as core;
pub use kron_datasets as datasets;
pub use kron_dist as dist;
pub use kron_graph as graph;
pub use kron_linalg as linalg;
